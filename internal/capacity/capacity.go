// Package capacity is UniDrive's per-cloud quota-exhaustion tracker.
//
// The paper aggregates small consumer free tiers (§6), so running a
// provider out of space is an expected steady state, not an outage.
// Quota rejections are deliberately NOT circuit-breaker evidence (a
// full cloud still serves downloads, lists, and lock traffic
// perfectly well); this package tracks the one axis the health layer
// ignores: whether a cloud can accept MORE BYTES.
//
// Every observed cloud.ErrQuotaExceeded moves that cloud to Full, and
// the transfer engine stops planning new uploads onto it (placement
// re-plans within MaxPerCloud, exactly like dead-cloud failover — but
// download, list and lock traffic keeps flowing). Two signals re-open
// a Full cloud for a probe:
//
//	Full ──(bytes freed ≥ ProbeFreeBytes)──▶ Probing ──(upload ok)──▶ OK
//	  ▲  ──(ProbeInterval elapsed)────────▶    │
//	  └──────────(quota error again)───────────┘
//
// Probing (the "Tight" state) admits upload traffic again; the first
// successful upload re-admits the cloud fully, the first quota
// rejection slams it back to Full and restarts the cooldown. The
// interval path matters because quota can return without this client
// observing a delete — the user empties trash in the provider's web
// UI, another device garbage-collects, or an operator raises the
// plan.
//
// Byte accounting is session-relative: UsedDelta is the net bytes
// this tracker has watched flow to the cloud (uploads minus deletes),
// not the provider-absolute usage, which consumer APIs rarely report
// honestly. It exists to size the pressure valve and the status view,
// not to predict rejections — the provider's own ErrQuotaExceeded is
// always the ground truth.
//
// Everything is deterministic under test: time comes from the
// injected vclock.Clock, and Rejections() exposes the exact count of
// observed quota errors per cloud so chaos soaks can reconcile
// simulator-injected rejections one-for-one against tracker
// observations.
package capacity

import (
	"sort"
	"sync"
	"time"

	"unidrive/internal/obs"
	"unidrive/internal/vclock"
)

// State classifies a cloud's capacity. The zero value is OK.
type State int

const (
	// OK: no quota pressure observed; uploads flow normally.
	OK State = iota
	// Probing: the cloud was Full but space may have returned (bytes
	// freed, or the re-probe cooldown elapsed); upload traffic is
	// admitted again and the next outcome decides OK vs Full.
	Probing
	// Full: the cloud rejected an upload with ErrQuotaExceeded and no
	// recovery signal has been seen since. No new uploads are planned
	// onto it; downloads, lists and locks are unaffected.
	Full
)

// String returns the lowercase state name used in status views.
func (s State) String() string {
	switch s {
	case OK:
		return "ok"
	case Probing:
		return "probing"
	case Full:
		return "full"
	default:
		return "unknown"
	}
}

// Config parameterizes a Tracker. The zero value is usable: every
// field has a production default filled in by NewTracker.
type Config struct {
	// ProbeFreeBytes is how many bytes must be observed freed (via
	// ObserveDelete) before a Full cloud becomes Probing without
	// waiting out the cooldown. Default 1 — any reclaimed space is
	// worth a probe.
	ProbeFreeBytes int64

	// ProbeInterval is the cooldown after which a Full cloud becomes
	// Probing even with no observed frees, so externally-reclaimed
	// quota (web-UI trash emptying, plan upgrades) is eventually
	// rediscovered. Default 60s.
	ProbeInterval time.Duration

	// Clock supplies time for the re-probe cooldown. Default the real
	// wall clock.
	Clock vclock.Clock

	// Obs receives capacity state gauges and rejection counters. Nil
	// discards them.
	Obs *obs.Registry
}

func (c *Config) fillDefaults() {
	if c.ProbeFreeBytes <= 0 {
		c.ProbeFreeBytes = 1
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 60 * time.Second
	}
	if c.Clock == nil {
		c.Clock = vclock.Real{}
	}
}

// record is one cloud's capacity bookkeeping.
type record struct {
	state      State
	usedDelta  int64     // net observed bytes: uploads − deletes
	freedSince int64     // bytes freed since the cloud went Full
	fullAt     time.Time // when the cloud last went Full
	rejections int64     // total observed quota errors
}

// Tracker holds one capacity record per cloud, created lazily on
// first use. A single Tracker is shared by the whole client stack so
// the transfer engine, scrubber and maintenance passes all see the
// same picture of each cloud's remaining space. A nil *Tracker is
// valid and tracks nothing: every cloud admits, every observation is
// discarded — the capacity layer off.
type Tracker struct {
	cfg Config

	mu      sync.Mutex
	records map[string]*record
}

// NewTracker returns a Tracker with cfg's zero fields defaulted.
func NewTracker(cfg Config) *Tracker {
	cfg.fillDefaults()
	return &Tracker{cfg: cfg, records: make(map[string]*record)}
}

// NewDefaultTracker returns a production-configured Tracker.
func NewDefaultTracker(clk vclock.Clock, reg *obs.Registry) *Tracker {
	return NewTracker(Config{Clock: clk, Obs: reg})
}

func (t *Tracker) recordLocked(cloudName string) *record {
	r, ok := t.records[cloudName]
	if !ok {
		r = &record{}
		t.records[cloudName] = r
		t.cfg.Obs.Gauge("capacity." + cloudName + ".state").Set(float64(OK))
	}
	return r
}

func (t *Tracker) setStateLocked(cloudName string, r *record, s State) {
	if r.state == s {
		return
	}
	r.state = s
	t.cfg.Obs.Gauge("capacity." + cloudName + ".state").Set(float64(s))
}

// refreshLocked applies the time-based re-probe transition.
func (t *Tracker) refreshLocked(cloudName string, r *record) {
	if r.state != Full {
		return
	}
	if t.cfg.Clock.Now().Sub(r.fullAt) >= t.cfg.ProbeInterval {
		t.setStateLocked(cloudName, r, Probing)
		t.cfg.Obs.Counter("capacity.probe_opened").Inc()
	}
}

// ObserveQuotaExceeded records one quota rejection for the named
// cloud: the cloud goes Full (Probing → Full restarts the cooldown)
// and the rejection is counted for chaos reconciliation. Callers must
// report each rejected request exactly once.
func (t *Tracker) ObserveQuotaExceeded(cloudName string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.recordLocked(cloudName)
	r.rejections++
	t.cfg.Obs.Counter("capacity.quota_rejections").Inc()
	t.cfg.Obs.Counter("capacity." + cloudName + ".quota_rejections").Inc()
	if r.state != Full {
		t.cfg.Obs.Counter("capacity.full_marks").Inc()
	}
	r.fullAt = t.cfg.Clock.Now()
	r.freedSince = 0
	t.setStateLocked(cloudName, r, Full)
}

// ObserveUpload records bytes successfully stored on the named cloud.
// A successful upload is proof of space: a Probing (or even Full —
// e.g. a racing in-flight upload that landed) cloud re-admits to OK.
func (t *Tracker) ObserveUpload(cloudName string, bytes int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.recordLocked(cloudName)
	r.usedDelta += bytes
	if r.state != OK {
		t.cfg.Obs.Counter("capacity.readmitted").Inc()
		t.setStateLocked(cloudName, r, OK)
		r.freedSince = 0
	}
}

// ObserveDelete records bytes reclaimed from the named cloud. Once a
// Full cloud's freed bytes reach ProbeFreeBytes it becomes Probing —
// the probe-after-free recovery path. A non-positive size (the
// cloud.Interface does not expose object sizes on delete) still
// credits one byte toward the probe threshold: a successful delete
// freed SOMETHING, and a spurious probe costs one failed upload.
func (t *Tracker) ObserveDelete(cloudName string, bytes int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.recordLocked(cloudName)
	if bytes > 0 {
		r.usedDelta -= bytes
	}
	if r.state == Full {
		credit := bytes
		if credit <= 0 {
			credit = 1
		}
		r.freedSince += credit
		if r.freedSince >= t.cfg.ProbeFreeBytes {
			t.setStateLocked(cloudName, r, Probing)
			t.cfg.Obs.Counter("capacity.probe_opened").Inc()
		}
	}
}

// Admits reports whether the named cloud is currently worth planning
// NEW UPLOAD work on: its state is OK or Probing. It never gates
// downloads, lists or lock traffic — a full cloud serves all of
// those. The time-based re-probe transition is applied on the way.
func (t *Tracker) Admits(cloudName string) bool {
	if t == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.recordLocked(cloudName)
	t.refreshLocked(cloudName, r)
	return r.state != Full
}

// State returns the named cloud's current capacity state (after
// applying the time-based re-probe transition).
func (t *Tracker) State(cloudName string) State {
	if t == nil {
		return OK
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.recordLocked(cloudName)
	t.refreshLocked(cloudName, r)
	return r.state
}

// WithSpace filters candidates down to clouds that currently admit
// uploads, preserving order but moving Probing clouds after OK ones —
// a probe should be the last resort, not the first target.
func (t *Tracker) WithSpace(candidates []string) []string {
	if t == nil {
		return append([]string(nil), candidates...)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ok := make([]string, 0, len(candidates))
	probing := make([]string, 0)
	for _, name := range candidates {
		r := t.recordLocked(name)
		t.refreshLocked(name, r)
		switch r.state {
		case OK:
			ok = append(ok, name)
		case Probing:
			probing = append(probing, name)
		}
	}
	return append(ok, probing...)
}

// Rejections returns the total observed quota rejections for the
// named cloud — the reconciliation hook for chaos soaks.
func (t *Tracker) Rejections(cloudName string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recordLocked(cloudName).rejections
}

// UsedDelta returns the net bytes this tracker has observed flowing
// to the named cloud (uploads minus deletes) — session-relative, for
// the status and debug views.
func (t *Tracker) UsedDelta(cloudName string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recordLocked(cloudName).usedDelta
}

// CloudState is one row of a capacity snapshot.
type CloudState struct {
	Cloud      string `json:"cloud"`
	State      string `json:"state"`
	UsedDelta  int64  `json:"used_delta_bytes"`
	Rejections int64  `json:"quota_rejections"`
}

// Snapshot returns every tracked cloud's capacity row, sorted by
// cloud name, with the time-based re-probe transition applied. Only
// clouds the tracker has observed (or been asked about) appear.
func (t *Tracker) Snapshot() []CloudState {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]CloudState, 0, len(t.records))
	for name, r := range t.records {
		t.refreshLocked(name, r)
		out = append(out, CloudState{
			Cloud:      name,
			State:      r.state.String(),
			UsedDelta:  r.usedDelta,
			Rejections: r.rejections,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cloud < out[j].Cloud })
	return out
}

// AnyFull reports whether any tracked cloud is currently Full —
// the cheap "is there capacity pressure at all" predicate the
// maintenance passes use to decide whether the pressure valve and
// re-expansion are worth running.
func (t *Tracker) AnyFull() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for name, r := range t.records {
		t.refreshLocked(name, r)
		if r.state == Full {
			return true
		}
	}
	return false
}
