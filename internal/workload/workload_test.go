package workload

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBytesDeterministic(t *testing.T) {
	a := Bytes(42, 1000)
	b := Bytes(42, 1000)
	if !bytes.Equal(a, b) {
		t.Fatal("equal seeds gave different content")
	}
	c := Bytes(43, 1000)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds gave equal content")
	}
}

func TestBatchShape(t *testing.T) {
	files := Batch(1, 100, 1<<20)
	if len(files) != 100 {
		t.Fatalf("count = %d", len(files))
	}
	names := make(map[string]bool)
	for _, f := range files {
		if len(f.Data) != 1<<20 {
			t.Fatalf("size = %d", len(f.Data))
		}
		if names[f.Name] {
			t.Fatalf("duplicate name %s", f.Name)
		}
		names[f.Name] = true
	}
	if bytes.Equal(files[0].Data[:64], files[1].Data[:64]) {
		t.Fatal("batch files share content; dedup would suppress transfers")
	}
}

func TestBucketOf(t *testing.T) {
	tests := []struct {
		size int
		want SizeBucket
	}{
		{1 << 10, BucketTiny},
		{99 << 10, BucketTiny},
		{100 << 10, BucketMedium},
		{1<<20 - 1, BucketMedium},
		{1 << 20, BucketLarge},
		{10 << 20, BucketHuge},
	}
	for _, tt := range tests {
		if got := BucketOf(tt.size); got != tt.want {
			t.Errorf("BucketOf(%d) = %v, want %v", tt.size, got, tt.want)
		}
	}
	if len(Buckets()) != 4 {
		t.Fatal("Buckets() must list all 4")
	}
	if BucketTiny.String() != "<100KB" || BucketHuge.String() != ">10MB" {
		t.Fatal("bucket names wrong")
	}
}

func TestTrialSizeBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buckets := make(map[SizeBucket]int)
	for i := 0; i < 5000; i++ {
		s := TrialSize(rng)
		if s < 1<<10 || s > 24<<20 {
			t.Fatalf("size %d out of bounds", s)
		}
		buckets[BucketOf(s)]++
	}
	// The mix must populate at least the three main buckets.
	for _, b := range []SizeBucket{BucketTiny, BucketMedium, BucketLarge} {
		if buckets[b] < 100 {
			t.Fatalf("bucket %v nearly empty: %d/5000", b, buckets[b])
		}
	}
}

func TestTrialFiles(t *testing.T) {
	files := TrialFiles(3, 20)
	if len(files) != 20 {
		t.Fatalf("count = %d", len(files))
	}
	for _, f := range files {
		if len(f.Data) == 0 {
			t.Fatal("empty trial file")
		}
	}
}
