// Package workload generates the file workloads of the paper's
// experiments: random-content files of controlled sizes (random so
// content-defined deduplication cannot suppress transfers, exactly as
// the paper does), batches for the end-to-end sync experiments, and
// the realistic size mix of the real-world trial.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Bytes returns n random bytes from the seed. Equal seeds give equal
// content (so an uploader and a verifier can agree), different seeds
// give effectively dedup-proof content.
func Bytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// File is one generated workload file.
type File struct {
	// Name is the file's path in the sync folder.
	Name string
	// Data is its random content.
	Data []byte
}

// Batch generates count files of size bytes each with distinct random
// content — e.g. the paper's 100 × 1 MB batch sync workload.
func Batch(seed int64, count, size int) []File {
	out := make([]File, count)
	for i := range out {
		out[i] = File{
			Name: fmt.Sprintf("batch/file-%04d.bin", i),
			Data: Bytes(seed+int64(i)*7919+1, size),
		}
	}
	return out
}

// SizeBucket labels a file-size range, matching the grouping of the
// paper's Figure 15.
type SizeBucket int

// Size buckets.
const (
	BucketTiny   SizeBucket = iota + 1 // < 100 KB
	BucketMedium                       // 100 KB – 1 MB
	BucketLarge                        // 1 – 10 MB
	BucketHuge                         // > 10 MB
)

// String names the bucket as the paper's figures do.
func (b SizeBucket) String() string {
	switch b {
	case BucketTiny:
		return "<100KB"
	case BucketMedium:
		return "100KB-1MB"
	case BucketLarge:
		return "1-10MB"
	case BucketHuge:
		return ">10MB"
	default:
		return fmt.Sprintf("SizeBucket(%d)", int(b))
	}
}

// BucketOf classifies a size in bytes.
func BucketOf(size int) SizeBucket {
	switch {
	case size < 100<<10:
		return BucketTiny
	case size < 1<<20:
		return BucketMedium
	case size < 10<<20:
		return BucketLarge
	default:
		return BucketHuge
	}
}

// Buckets lists all buckets in ascending size order.
func Buckets() []SizeBucket {
	return []SizeBucket{BucketTiny, BucketMedium, BucketLarge, BucketHuge}
}

// NormSource supplies standard-normal draws; *rand.Rand satisfies
// it, as does any deterministic generator a population harness
// prefers to pin.
type NormSource interface {
	NormFloat64() float64
}

// TrialSize draws a file size from the trial's mix: log-normal body
// (documents and photos cluster in the tens-of-KB to single-MB range)
// with a media tail — over half of the paper's trial volume was
// documents and multimedia.
func TrialSize(src NormSource) int {
	// Log-normal with median ~120 KB, sigma 1.6.
	size := int(math.Exp(math.Log(120<<10) + 1.6*src.NormFloat64()))
	const min = 1 << 10
	const max = 24 << 20
	if size < min {
		size = min
	}
	if size > max {
		size = max
	}
	return size
}

// TrialFiles generates one user's trial uploads.
func TrialFiles(seed int64, count int) []File {
	rng := rand.New(rand.NewSource(seed))
	out := make([]File, count)
	for i := range out {
		size := TrialSize(rng)
		out[i] = File{
			Name: fmt.Sprintf("trial/u%d-f%03d.bin", seed, i),
			Data: Bytes(seed*1000+int64(i), size),
		}
	}
	return out
}
