package deltasync

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"unidrive/internal/cloud"
	"unidrive/internal/cloudsim"
	"unidrive/internal/meta"
	"unidrive/internal/obs"
)

// imagesEqual compares the parts of two images that sync correctness
// depends on.
func imagesEqual(a, b *meta.Image) bool {
	if a.Version != b.Version || a.Device != b.Device ||
		a.NumFiles() != b.NumFiles() || a.NumSegments() != b.NumSegments() {
		return false
	}
	for p := range a.AllFiles() {
		sa, sb := a.Lookup(p).Current(), b.Lookup(p).Current()
		if (sa == nil) != (sb == nil) {
			return false
		}
		if sa != nil && !sa.ContentEquals(sb) {
			return false
		}
	}
	for id := range a.AllSegments() {
		if _, ok := b.Segment(id); !ok {
			return false
		}
	}
	return true
}

func TestRefreshNoopWhenNothingPending(t *testing.T) {
	r := newRig(3)
	s := r.store(t, "d1", Config{})
	if _, err := s.Commit(context.Background(), []*meta.Change{addChange("a.txt", "s1")}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.cfg.Obs = reg
	img, err := s.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if img.Version != 1 {
		t.Fatalf("version = %d, want 1", img.Version)
	}
	if n := reg.Counter("deltasync.refresh.noop").Value(); n != 1 {
		t.Errorf("noop counter = %d, want 1", n)
	}
	if n := reg.Counter("deltasync.refresh.full").Value(); n != 0 {
		t.Errorf("full counter = %d, want 0", n)
	}
}

func TestRefreshIncrementalSkipsBaseDownload(t *testing.T) {
	r := newRig(3)
	writer := r.store(t, "dW", Config{})
	// Establish a shared base: commit once, then rotate so every cloud
	// holds a non-trivial base file.
	if _, err := writer.Commit(context.Background(), []*meta.Change{addChange("a.txt", "s1")}); err != nil {
		t.Fatal(err)
	}

	// Reader adopts the current state, then the writer commits more.
	reg := obs.NewRegistry()
	recorders := make([]*cloudsim.Recorder, len(r.stores))
	clouds := make([]cloud.Interface, len(r.stores))
	for i, st := range r.stores {
		recorders[i] = cloudsim.NewRecorder(cloudsim.NewDirect(st))
		clouds[i] = recorders[i]
	}
	reader := New(clouds, testCipher(t), Config{Device: "dR", Obs: reg})
	if _, err := reader.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}

	for i := 2; i <= 3; i++ {
		if _, err := writer.Commit(context.Background(), []*meta.Change{
			addChange(fmt.Sprintf("f%d.txt", i), fmt.Sprintf("s%d", i))}); err != nil {
			t.Fatal(err)
		}
	}

	// Reset byte counters, then refresh: only version + delta files may
	// move, never the base.
	var beforeBase int
	for _, rec := range recorders {
		for _, p := range rec.UploadedPaths() {
			_ = p
		}
		beforeBase += int(rec.PrefixUploadBytes("")) // uploads: none expected anyway
	}
	img, err := reader.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if img.Version != 3 {
		t.Fatalf("refreshed version = %d, want 3", img.Version)
	}
	if img.Lookup("f3.txt").Current() == nil {
		t.Fatal("refresh missed committed file")
	}
	if n := reg.Counter("deltasync.refresh.incremental").Value(); n != 1 {
		t.Errorf("incremental counter = %d, want 1", n)
	}
	if n := reg.Counter("deltasync.refresh.full").Value(); n != 0 {
		t.Errorf("full counter = %d, want 0", n)
	}
	// Equivalence: a fresh full Fetch on another store sees the same image.
	other := r.store(t, "dX", Config{})
	full, err := other.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(img, full) {
		t.Error("incremental refresh diverged from full fetch")
	}
}

func TestRefreshFallsBackToFullAfterRotation(t *testing.T) {
	r := newRig(3)
	// Tiny λ floor: every commit rotates the base.
	writer := r.store(t, "dW", Config{LambdaMin: 1})
	if _, err := writer.Commit(context.Background(), []*meta.Change{addChange("a.txt", "s1")}); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	reader := r.store(t, "dR", Config{Obs: reg})
	if _, err := reader.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Commit(context.Background(), []*meta.Change{addChange("b.txt", "s2")}); err != nil {
		t.Fatal(err)
	}

	img, err := reader.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if img.Version != 2 || img.Lookup("b.txt").Current() == nil {
		t.Fatalf("refresh after rotation: version %d", img.Version)
	}
	if n := reg.Counter("deltasync.refresh.full").Value(); n != 1 {
		t.Errorf("full counter = %d, want 1", n)
	}
	if n := reg.Counter("deltasync.refresh.incremental").Value(); n != 0 {
		t.Errorf("incremental counter = %d, want 0", n)
	}
}

func TestCachedSharedMatchesCached(t *testing.T) {
	r := newRig(3)
	s := r.store(t, "d1", Config{})
	if _, err := s.Commit(context.Background(), []*meta.Change{addChange("a.txt", "s1")}); err != nil {
		t.Fatal(err)
	}
	shared := s.CachedShared()
	clone := s.Cached()
	if !imagesEqual(shared, clone) {
		t.Fatal("CachedShared and Cached disagree")
	}
	// The shared image must survive a subsequent commit unmutated.
	if _, err := s.Commit(context.Background(), []*meta.Change{addChange("b.txt", "s2")}); err != nil {
		t.Fatal(err)
	}
	if shared.Version != 1 || shared.Lookup("b.txt").Current() != nil {
		t.Error("held shared image was mutated by a later commit")
	}
	if s.CachedShared().Version != 2 {
		t.Error("CachedShared not updated after commit")
	}
}

func TestLazyBaseSkipsEncodeUntilRotation(t *testing.T) {
	r := newRig(3)
	lazy := r.store(t, "dL", Config{LazyBase: true, LambdaMin: 1024})

	stats, err := lazy.Commit(context.Background(), []*meta.Change{addChange("a.txt", "s1")})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BaseRotated {
		t.Fatal("first small commit unexpectedly rotated")
	}
	if stats.BaseBytes != 0 {
		t.Errorf("lazy non-rotating commit encoded a base (%d bytes)", stats.BaseBytes)
	}
	// No cloud should hold a base file yet (genesis, no repair needed).
	for _, st := range r.stores {
		if _, err := cloudsim.NewDirect(st).Download(context.Background(), DefaultDir+"/base"); err == nil {
			t.Fatal("lazy commit uploaded a base file")
		}
	}

	// Push the delta past λ's floor so a later commit rotates.
	pad := strings.Repeat("x", 64)
	for i := 0; i < 12; i++ {
		c := addChange(fmt.Sprintf("pad%02d-%s.txt", i, pad), fmt.Sprintf("sp%d", i))
		if _, err := lazy.Commit(context.Background(), []*meta.Change{c}); err != nil {
			t.Fatal(err)
		}
	}
	// By now the accumulated delta must have crossed λ and rotated.
	rotated := false
	for _, st := range r.stores {
		if _, err := cloudsim.NewDirect(st).Download(context.Background(), DefaultDir+"/base"); err == nil {
			rotated = true
		}
	}
	if !rotated {
		t.Fatal("delta never rotated into a base under LazyBase")
	}

	// Cross-device equivalence: a plain reader fetches the same state.
	reader := r.store(t, "dR", Config{})
	img, err := reader.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(img, lazy.CachedShared()) {
		t.Error("reader's fetched image diverges from lazy writer's cache")
	}
}

func TestLazyBaseRepairsStaleCloud(t *testing.T) {
	r := newRig(3)
	lazy := r.store(t, "dL", Config{LazyBase: true})
	if _, err := lazy.Commit(context.Background(), []*meta.Change{addChange("a.txt", "s1")}); err != nil {
		t.Fatal(err)
	}
	// Cloud 2 misses the next commit.
	r.flaky[2].SetDown(true)
	if _, err := lazy.Commit(context.Background(), []*meta.Change{addChange("b.txt", "s2")}); err != nil {
		t.Fatal(err)
	}
	r.flaky[2].SetDown(false)
	// The next commit must repair cloud 2 with a full base, which under
	// LazyBase forces the deferred encode.
	if _, err := lazy.Commit(context.Background(), []*meta.Change{addChange("c.txt", "s3")}); err != nil {
		t.Fatal(err)
	}
	if _, err := cloudsim.NewDirect(r.stores[2]).Download(context.Background(), DefaultDir+"/base"); err != nil {
		t.Fatalf("stale cloud not repaired with a base: %v", err)
	}
	// A reader served only by the repaired cloud sees everything.
	only2 := New([]cloud.Interface{cloudsim.NewDirect(r.stores[2])}, testCipher(t), Config{Device: "dR"})
	img, err := only2.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"a.txt", "b.txt", "c.txt"} {
		if img.Lookup(p).Current() == nil {
			t.Errorf("repaired cloud missing %s", p)
		}
	}
}

func TestRefreshIncrementalDownloadsNoBase(t *testing.T) {
	r := newRig(3)
	writer := r.store(t, "dW", Config{})
	if _, err := writer.Commit(context.Background(), []*meta.Change{addChange("a.txt", "s1")}); err != nil {
		t.Fatal(err)
	}

	recorders := make([]*cloudsim.Recorder, len(r.stores))
	clouds := make([]cloud.Interface, len(r.stores))
	for i, st := range r.stores {
		recorders[i] = cloudsim.NewRecorder(cloudsim.NewDirect(st))
		clouds[i] = recorders[i]
	}
	reader := New(clouds, testCipher(t), Config{Device: "dR"})
	if _, err := reader.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	baseDownloadsAfterFetch := totalDownloads(recorders)

	if _, err := writer.Commit(context.Background(), []*meta.Change{addChange("b.txt", "s2")}); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The incremental refresh downloads version stamps and one delta;
	// the base files must not move again.
	grew := totalDownloads(recorders) - baseDownloadsAfterFetch
	// 3 stamps (CheckRemote) + 3 stamps (ranking) + 1 delta = 7 calls max.
	if grew > 7 {
		t.Errorf("incremental refresh made %d downloads, want <= 7", grew)
	}
}

func totalDownloads(recorders []*cloudsim.Recorder) int {
	n := 0
	for _, r := range recorders {
		n += r.Counts().Download
	}
	return n
}
