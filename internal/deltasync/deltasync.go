// Package deltasync stores UniDrive's metadata in the multi-cloud as
// a base file plus a log-structured delta file (paper §5.2,
// "Delta-sync for Efficiency", following HDFS's image/edits design).
//
// The gross metadata (SyncFolderImage) grows with the number of files
// and would be expensive to re-upload on every commit. Instead:
//
//   - base holds a full encrypted snapshot of the image;
//   - delta holds an encrypted log of commit records appended since
//     the base was written;
//   - version holds a tiny plaintext stamp {device, version} that
//     devices poll to detect pending cloud updates without
//     downloading any metadata.
//
// When the delta grows past the threshold λ — a fraction of the base
// size with a floor (the paper suggests 0.25·base or 10 KB) — the
// committing device merges it into a fresh base and clears the delta.
//
// All three files are replicated to every cloud. Commits happen under
// the quorum lock and succeed when a majority of clouds accepted
// them; stale clouds (down during earlier commits) are detected by
// their version stamp and repaired with a full base write on the next
// commit that reaches them. A fetch picks the newest version visible
// on any reachable cloud, which under majority-commit is always the
// latest committed state.
package deltasync

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"unidrive/internal/cloud"
	"unidrive/internal/meta"
	"unidrive/internal/metacrypt"
)

// Remote metadata file names under Dir.
const (
	baseFile    = "base"
	deltaFile   = "delta"
	versionFile = "version"
)

// DefaultDir is the metadata directory on every cloud.
const DefaultDir = ".unidrive/meta"

// ErrNoQuorum reports that a commit could not reach a majority of
// clouds.
var ErrNoQuorum = errors.New("deltasync: commit did not reach a quorum of clouds")

// Record is one committed metadata update in the delta log.
type Record struct {
	// Version is the image version this record produces.
	Version int64 `json:"version"`
	// Device is the committing device.
	Device string `json:"device"`
	// BaseVersion is the version of the base the record applies to;
	// a delta whose BaseVersion does not match a cloud's base is
	// evidence of a stale cloud and is ignored.
	BaseVersion int64 `json:"baseVersion"`
	// Changes are the file changes of this commit.
	Changes []*meta.Change `json:"changes"`
}

// Config parametrizes the store.
type Config struct {
	// Device is this device's name, stamped into commits.
	Device string
	// Dir is the metadata directory on each cloud (DefaultDir).
	Dir string
	// LambdaFrac and LambdaMin define the delta-merge threshold λ:
	// the delta is merged into the base when its encoded size
	// exceeds max(LambdaFrac·baseSize, LambdaMin). Defaults 0.25 and
	// 10 KB.
	LambdaFrac float64
	LambdaMin  int
}

func (c *Config) fillDefaults() {
	if c.Dir == "" {
		c.Dir = DefaultDir
	}
	if c.LambdaFrac <= 0 {
		c.LambdaFrac = 0.25
	}
	if c.LambdaMin <= 0 {
		c.LambdaMin = 10 * 1024
	}
}

// CommitStats reports what a commit moved over the network, used by
// the Delta-sync efficiency experiment (paper Fig 13).
type CommitStats struct {
	// Version is the committed image version.
	Version int64
	// BaseRotated reports whether this commit wrote a fresh base.
	BaseRotated bool
	// DeltaBytes and BaseBytes are the encoded (encrypted) sizes
	// uploaded per cloud for the delta and base files.
	DeltaBytes int
	BaseBytes  int
	// FullImageBytes is the size a non-delta design would have
	// uploaded (the whole encoded image) — the Fig 13 comparison.
	FullImageBytes int
	// CloudsOK counts clouds that accepted the commit.
	CloudsOK int
}

// Store replicates metadata to a set of clouds. Safe for concurrent
// use, though commits must be serialized by the quorum lock.
type Store struct {
	clouds []cloud.Interface
	cipher *metacrypt.Cipher
	cfg    Config

	mu      sync.Mutex
	base    *meta.Image // last known base
	records []Record    // last known delta records
	stamp   meta.VersionStamp
}

// New creates a metadata store over the given clouds. cipher encrypts
// base and delta files; it must be the same on every device.
func New(clouds []cloud.Interface, cipher *metacrypt.Cipher, cfg Config) *Store {
	if len(clouds) == 0 {
		panic("deltasync: no clouds")
	}
	if cfg.Device == "" {
		panic("deltasync: empty device name")
	}
	cfg.fillDefaults()
	return &Store{
		clouds: clouds,
		cipher: cipher,
		cfg:    cfg,
		base:   meta.NewImage(),
	}
}

// Quorum returns the majority count for commits.
func (s *Store) Quorum() int { return len(s.clouds)/2 + 1 }

func (s *Store) path(name string) string { return cloud.JoinPath(s.cfg.Dir, name) }

// Stamp returns the last known committed version stamp.
func (s *Store) Stamp() meta.VersionStamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stamp
}

// Cached returns a deep copy of the last fetched/committed image.
func (s *Store) Cached() *meta.Image {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.materializeLocked()
}

// materializeLocked rebuilds the image from base + records.
func (s *Store) materializeLocked() *meta.Image {
	img := s.base.Clone()
	for _, r := range s.records {
		for _, c := range r.Changes {
			// Records were validated at commit time; an error here
			// indicates corrupted state and is surfaced by Fetch.
			_ = img.Apply(c, r.Device)
		}
		img.Version = r.Version
		img.Device = r.Device
	}
	// Zero-reference segments are dropped deterministically at
	// materialization, so every device converges on the same pool and
	// the committing device can garbage-collect their blocks.
	img.DropSegments(img.RecountRefs())
	return img
}

// CheckRemote reports whether any reachable cloud advertises a newer
// metadata version than the cached one — the paper's cheap
// cloud-update check using only the tiny version file.
func (s *Store) CheckRemote(ctx context.Context) (bool, error) {
	known := s.Stamp()
	type outcome struct {
		reachable bool
		pending   bool
		err       error
	}
	results := make([]outcome, len(s.clouds))
	var wg sync.WaitGroup
	for i, c := range s.clouds {
		wg.Add(1)
		go func(i int, c cloud.Interface) {
			defer wg.Done()
			data, err := c.Download(ctx, s.path(versionFile))
			if err != nil {
				if errors.Is(err, cloud.ErrNotFound) {
					results[i] = outcome{reachable: true}
				} else {
					results[i] = outcome{err: err}
				}
				return
			}
			stamp, err := meta.DecodeVersionStamp(data)
			if err != nil {
				results[i] = outcome{reachable: true, err: err}
				return
			}
			pending := stamp.Version > known.Version ||
				(stamp.Version == known.Version && stamp.Device != known.Device)
			results[i] = outcome{reachable: true, pending: pending}
		}(i, c)
	}
	wg.Wait()
	var anyReachable bool
	var lastErr error
	for _, r := range results {
		if r.err != nil {
			lastErr = r.err
		}
		if r.reachable {
			anyReachable = true
		}
		if r.pending {
			return true, nil
		}
	}
	if !anyReachable {
		return false, fmt.Errorf("deltasync: no cloud reachable for version check: %w", lastErr)
	}
	return false, nil
}

// cloudState is one cloud's fetched metadata.
type cloudState struct {
	base    *meta.Image
	records []Record
	stamp   meta.VersionStamp
}

// fetchCloud reads and validates one cloud's metadata lineage.
func (s *Store) fetchCloud(ctx context.Context, c cloud.Interface) (*cloudState, error) {
	baseData, err := c.Download(ctx, s.path(baseFile))
	var baseImg *meta.Image
	switch {
	case errors.Is(err, cloud.ErrNotFound):
		baseImg = meta.NewImage()
	case err != nil:
		return nil, fmt.Errorf("deltasync: fetching base from %s: %w", c.Name(), err)
	default:
		plain, err := s.cipher.Open(baseData)
		if err != nil {
			return nil, fmt.Errorf("deltasync: decrypting base from %s: %w", c.Name(), err)
		}
		baseImg, err = meta.DecodeImage(plain)
		if err != nil {
			return nil, fmt.Errorf("deltasync: decoding base from %s: %w", c.Name(), err)
		}
	}

	var records []Record
	deltaData, err := c.Download(ctx, s.path(deltaFile))
	switch {
	case errors.Is(err, cloud.ErrNotFound):
		// No delta yet.
	case err != nil:
		return nil, fmt.Errorf("deltasync: fetching delta from %s: %w", c.Name(), err)
	default:
		records, err = s.decodeDelta(deltaData)
		if err != nil {
			return nil, fmt.Errorf("deltasync: delta from %s: %w", c.Name(), err)
		}
	}

	// Validate lineage: records must chain from this base.
	expect := baseImg.Version
	for _, r := range records {
		if r.BaseVersion != baseImg.Version || r.Version != expect+1 {
			return nil, fmt.Errorf("deltasync: %s has inconsistent lineage (base v%d, record v%d on base v%d)",
				c.Name(), baseImg.Version, r.Version, r.BaseVersion)
		}
		expect = r.Version
	}
	st := &cloudState{base: baseImg, records: records}
	st.stamp = meta.VersionStamp{Device: baseImg.Device, Version: baseImg.Version}
	if n := len(records); n > 0 {
		st.stamp = meta.VersionStamp{Device: records[n-1].Device, Version: records[n-1].Version}
	}
	return st, nil
}

// Fetch refreshes the cached metadata from the clouds: it collects
// every reachable cloud's state and adopts the newest consistent one.
// It returns the materialized image.
func (s *Store) Fetch(ctx context.Context) (*meta.Image, error) {
	states := make([]*cloudState, len(s.clouds))
	errs := make([]error, len(s.clouds))
	var wg sync.WaitGroup
	for i, c := range s.clouds {
		wg.Add(1)
		go func(i int, c cloud.Interface) {
			defer wg.Done()
			states[i], errs[i] = s.fetchCloud(ctx, c)
		}(i, c)
	}
	wg.Wait()
	var best *cloudState
	var lastErr error
	for i, st := range states {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		if best == nil || st.stamp.Version > best.stamp.Version {
			best = st
		}
	}
	if best == nil {
		return nil, fmt.Errorf("deltasync: no cloud yielded metadata: %w", lastErr)
	}
	s.mu.Lock()
	s.base = best.base
	s.records = best.records
	s.stamp = best.stamp
	img := s.materializeLocked()
	s.mu.Unlock()
	return img, nil
}

// encodeDelta serializes and encrypts the record log as JSON lines.
func (s *Store) encodeDelta(records []Record) ([]byte, error) {
	var buf bytes.Buffer
	for _, r := range records {
		line, err := encodeRecord(r)
		if err != nil {
			return nil, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	sealed, err := s.cipher.Seal(buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("deltasync: encrypting delta: %w", err)
	}
	return sealed, nil
}

func (s *Store) decodeDelta(blob []byte) ([]Record, error) {
	plain, err := s.cipher.Open(blob)
	if err != nil {
		return nil, fmt.Errorf("decrypting delta: %w", err)
	}
	var records []Record
	for _, line := range bytes.Split(plain, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		r, err := decodeRecord(line)
		if err != nil {
			return nil, err
		}
		records = append(records, r)
	}
	return records, nil
}

// Commit writes a new metadata version containing the given changes.
// It must be called while holding the quorum lock, with the cached
// state up to date (call Fetch first when a cloud update is pending).
// The new image version is cached version + 1.
//
// Commit appends a record to the delta log, or — when the delta would
// exceed λ, or a full image write is forced — rotates the base.
// Clouds whose version stamp shows they missed earlier commits are
// repaired with a full base write.
func (s *Store) Commit(ctx context.Context, changes []*meta.Change) (CommitStats, error) {
	for _, c := range changes {
		if err := c.Validate(); err != nil {
			return CommitStats{}, fmt.Errorf("deltasync: commit: %w", err)
		}
	}
	s.mu.Lock()
	prevStamp := s.stamp
	rec := Record{
		Version:     prevStamp.Version + 1,
		Device:      s.cfg.Device,
		BaseVersion: s.base.Version,
		Changes:     changes,
	}
	newRecords := append(append([]Record(nil), s.records...), rec)
	newImage := func() *meta.Image {
		img := s.base.Clone()
		for _, r := range newRecords {
			for _, ch := range r.Changes {
				_ = img.Apply(ch, r.Device)
			}
			img.Version = r.Version
			img.Device = r.Device
		}
		img.DropSegments(img.RecountRefs())
		return img
	}()
	s.mu.Unlock()

	fullImageData, err := newImage.Encode()
	if err != nil {
		return CommitStats{}, err
	}
	sealedBase, err := s.cipher.Seal(fullImageData)
	if err != nil {
		return CommitStats{}, fmt.Errorf("deltasync: encrypting base: %w", err)
	}
	deltaBlob, err := s.encodeDelta(newRecords)
	if err != nil {
		return CommitStats{}, err
	}
	stampData, err := meta.VersionStamp{Device: s.cfg.Device, Version: rec.Version}.Encode()
	if err != nil {
		return CommitStats{}, err
	}

	lambda := int(s.cfg.LambdaFrac * float64(len(sealedBase)))
	if lambda < s.cfg.LambdaMin {
		lambda = s.cfg.LambdaMin
	}
	rotate := len(deltaBlob) > lambda

	stats := CommitStats{
		Version:        rec.Version,
		BaseRotated:    rotate,
		DeltaBytes:     len(deltaBlob),
		BaseBytes:      len(sealedBase),
		FullImageBytes: len(sealedBase),
	}

	var wg sync.WaitGroup
	okCh := make([]bool, len(s.clouds))
	for i, c := range s.clouds {
		wg.Add(1)
		go func(i int, c cloud.Interface) {
			defer wg.Done()
			okCh[i] = s.commitToCloud(ctx, c, prevStamp, rotate, sealedBase, deltaBlob, stampData)
		}(i, c)
	}
	wg.Wait()
	for _, ok := range okCh {
		if ok {
			stats.CloudsOK++
		}
	}
	if stats.CloudsOK < s.Quorum() {
		return stats, fmt.Errorf("%w: %d/%d", ErrNoQuorum, stats.CloudsOK, len(s.clouds))
	}

	s.mu.Lock()
	if rotate {
		s.base = newImage
		s.records = nil
	} else {
		s.records = newRecords
	}
	s.stamp = meta.VersionStamp{Device: s.cfg.Device, Version: rec.Version}
	s.mu.Unlock()
	return stats, nil
}

// commitToCloud writes this commit to one cloud. A cloud that is
// up-to-date (its stamp equals prevStamp) receives only the delta
// (or, on rotation, the new base); a stale or empty cloud receives a
// full repair (base + empty delta).
func (s *Store) commitToCloud(ctx context.Context, c cloud.Interface, prevStamp meta.VersionStamp,
	rotate bool, sealedBase, deltaBlob, stampData []byte) bool {

	upToDate := false
	if data, err := c.Download(ctx, s.path(versionFile)); err == nil {
		if st, err := meta.DecodeVersionStamp(data); err == nil && st == prevStamp {
			upToDate = true
		}
	} else if prevStamp.Version == 0 && errors.Is(err, cloud.ErrNotFound) {
		upToDate = true // brand-new cloud at genesis
	}

	writeBase := rotate || !upToDate
	if writeBase {
		if err := c.Upload(ctx, s.path(baseFile), sealedBase); err != nil {
			return false
		}
		emptyDelta, err := s.encodeDelta(nil)
		if err != nil {
			return false
		}
		if err := c.Upload(ctx, s.path(deltaFile), emptyDelta); err != nil {
			return false
		}
	} else {
		if err := c.Upload(ctx, s.path(deltaFile), deltaBlob); err != nil {
			return false
		}
	}
	return c.Upload(ctx, s.path(versionFile), stampData) == nil
}

func encodeRecord(r Record) ([]byte, error) {
	data, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("deltasync: encoding record v%d: %w", r.Version, err)
	}
	return data, nil
}

func decodeRecord(line []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(line, &r); err != nil {
		return Record{}, fmt.Errorf("deltasync: decoding record: %w", err)
	}
	return r, nil
}
