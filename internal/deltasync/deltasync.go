// Package deltasync stores UniDrive's metadata in the multi-cloud as
// a base file plus a log-structured delta file (paper §5.2,
// "Delta-sync for Efficiency", following HDFS's image/edits design).
//
// The gross metadata (SyncFolderImage) grows with the number of files
// and would be expensive to re-upload on every commit. Instead:
//
//   - base holds a full encrypted snapshot of the image;
//   - delta holds an encrypted log of commit records appended since
//     the base was written;
//   - version holds a tiny plaintext stamp {device, version} that
//     devices poll to detect pending cloud updates without
//     downloading any metadata.
//
// When the delta grows past the threshold λ — a fraction of the base
// size with a floor (the paper suggests 0.25·base or 10 KB) — the
// committing device merges it into a fresh base and clears the delta.
//
// All three files are replicated to every cloud. Commits happen under
// the quorum lock and succeed when a majority of clouds accepted
// them; stale clouds (down during earlier commits) are detected by
// their version stamp and repaired with a full base write on the next
// commit that reaches them. A fetch picks the newest version visible
// on any reachable cloud, which under majority-commit is always the
// latest committed state.
package deltasync

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"unidrive/internal/cloud"
	"unidrive/internal/meta"
	"unidrive/internal/metacrypt"
	"unidrive/internal/obs"
)

// Remote metadata file names under Dir.
const (
	baseFile    = "base"
	deltaFile   = "delta"
	versionFile = "version"
)

// chunkPrefix names frozen delta chunks: "delta.v%012d", where the
// number is the version of the chunk's first record. Zero-padding
// makes lexicographic order equal version order.
const chunkPrefix = "delta.v"

func chunkName(firstVersion int64) string {
	return fmt.Sprintf("%s%012d", chunkPrefix, firstVersion)
}

// parseChunkName extracts the first-record version from a chunk
// object name; ok is false for non-chunk names.
func parseChunkName(name string) (int64, bool) {
	if !strings.HasPrefix(name, chunkPrefix) {
		return 0, false
	}
	var v int64
	for _, c := range name[len(chunkPrefix):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	return v, true
}

// DefaultDir is the metadata directory on every cloud.
const DefaultDir = ".unidrive/meta"

// ErrNoQuorum reports that a commit could not reach a majority of
// clouds.
var ErrNoQuorum = errors.New("deltasync: commit did not reach a quorum of clouds")

// Record is one committed metadata update in the delta log.
type Record struct {
	// Version is the image version this record produces.
	Version int64 `json:"version"`
	// Device is the committing device.
	Device string `json:"device"`
	// BaseVersion is the version of the base the record applies to;
	// a delta whose BaseVersion does not match a cloud's base is
	// evidence of a stale cloud and is ignored.
	BaseVersion int64 `json:"baseVersion"`
	// Changes are the file changes of this commit.
	Changes []*meta.Change `json:"changes"`
}

// Config parametrizes the store.
type Config struct {
	// Device is this device's name, stamped into commits.
	Device string
	// Dir is the metadata directory on each cloud (DefaultDir).
	Dir string
	// LambdaFrac and LambdaMin define the delta-merge threshold λ:
	// the delta is merged into the base when its encoded size
	// exceeds max(LambdaFrac·baseSize, LambdaMin). Defaults 0.25 and
	// 10 KB.
	LambdaFrac float64
	LambdaMin  int
	// ChunkBytes caps the active delta tail: when the sealed tail
	// would exceed it, the tail is frozen into an immutable chunk
	// object (delta.v<firstVersion>) uploaded once, and the tail
	// restarts empty. Commits therefore re-encode and re-upload only
	// the records since the last freeze — O(recent changes) — instead
	// of the whole chain since the last base rotation, which grows
	// with folder size (a single post-populate relocation commit can
	// hold thousands of records). Default 64 KB.
	ChunkBytes int
	// LazyBase skips encoding and encrypting the full image on commits
	// that do not rotate the base (the common case) — the dominant
	// per-commit CPU cost once folders grow large. λ is then computed
	// against the sealed size of the last fetched or rotated base, and
	// a stale cloud needing repair triggers the encode on demand. With
	// LazyBase set, CommitStats.BaseBytes and FullImageBytes are zero
	// on non-rotating commits, so the delta-efficiency experiments run
	// with it off.
	LazyBase bool
	// Obs receives store metrics; nil disables instrumentation.
	Obs *obs.Registry
}

func (c *Config) fillDefaults() {
	if c.Dir == "" {
		c.Dir = DefaultDir
	}
	if c.LambdaFrac <= 0 {
		c.LambdaFrac = 0.25
	}
	if c.LambdaMin <= 0 {
		c.LambdaMin = 10 * 1024
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 64 * 1024
	}
}

// CommitStats reports what a commit moved over the network, used by
// the Delta-sync efficiency experiment (paper Fig 13).
type CommitStats struct {
	// Version is the committed image version.
	Version int64
	// BaseRotated reports whether this commit wrote a fresh base.
	BaseRotated bool
	// DeltaBytes and BaseBytes are the encoded (encrypted) sizes
	// uploaded per cloud for the delta and base files.
	DeltaBytes int
	BaseBytes  int
	// FullImageBytes is the size a non-delta design would have
	// uploaded (the whole encoded image) — the Fig 13 comparison.
	FullImageBytes int
	// CloudsOK counts clouds that accepted the commit.
	CloudsOK int
}

// Store replicates metadata to a set of clouds. Safe for concurrent
// use, though commits must be serialized by the quorum lock.
type Store struct {
	clouds []cloud.Interface
	cipher *metacrypt.Cipher
	cfg    Config

	mu      sync.Mutex
	base    *meta.Image // last known base
	records []Record    // last known delta records (frozen chunks + tail)
	stamp   meta.VersionStamp
	img     *meta.Image // materialized base+records; replaced, never mutated
	baseLen int         // sealed size of base as last fetched/rotated, for λ under LazyBase
	// frozen is the count of records already frozen into chunk
	// objects; records[frozen:] is the active tail re-uploaded per
	// commit. chunkBytes is the total sealed size of the frozen
	// chunks, counted toward λ.
	frozen     int
	chunkBytes int
}

// New creates a metadata store over the given clouds. cipher encrypts
// base and delta files; it must be the same on every device.
func New(clouds []cloud.Interface, cipher *metacrypt.Cipher, cfg Config) *Store {
	if len(clouds) == 0 {
		panic("deltasync: no clouds")
	}
	if cfg.Device == "" {
		panic("deltasync: empty device name")
	}
	cfg.fillDefaults()
	s := &Store{
		clouds: clouds,
		cipher: cipher,
		cfg:    cfg,
		base:   meta.NewImage(),
	}
	s.img = s.materializeLocked()
	return s
}

// Quorum returns the majority count for commits.
func (s *Store) Quorum() int { return len(s.clouds)/2 + 1 }

func (s *Store) path(name string) string { return cloud.JoinPath(s.cfg.Dir, name) }

// Stamp returns the last known committed version stamp.
func (s *Store) Stamp() meta.VersionStamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stamp
}

// Cached returns a deep copy of the last fetched/committed image.
func (s *Store) Cached() *meta.Image {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.img.Clone()
}

// CachedShared returns the last fetched/committed image without
// copying. The returned image is shared and MUST be treated as
// read-only: the store replaces it wholesale on every state change
// and never mutates it in place, so a held reference stays internally
// consistent. The event-driven sync loop uses this on its per-pass
// hot path, where Cached's deep copy would reintroduce an O(folder)
// cost per pass.
func (s *Store) CachedShared() *meta.Image {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.img
}

// materializeLocked rebuilds the image from base + records.
func (s *Store) materializeLocked() *meta.Image {
	img := s.base.Clone()
	for _, r := range s.records {
		for _, c := range r.Changes {
			// Records were validated at commit time; an error here
			// indicates corrupted state and is surfaced by Fetch.
			_ = img.Apply(c, r.Device)
		}
		img.Version = r.Version
		img.Device = r.Device
	}
	// Zero-reference segments are dropped deterministically at
	// materialization, so every device converges on the same pool and
	// the committing device can garbage-collect their blocks.
	img.DropSegments(img.RecountRefs())
	return img
}

// CheckRemote reports whether any reachable cloud advertises a newer
// metadata version than the cached one — the paper's cheap
// cloud-update check using only the tiny version file.
func (s *Store) CheckRemote(ctx context.Context) (bool, error) {
	known := s.Stamp()
	type outcome struct {
		reachable bool
		pending   bool
		err       error
	}
	results := make([]outcome, len(s.clouds))
	var wg sync.WaitGroup
	for i, c := range s.clouds {
		wg.Add(1)
		go func(i int, c cloud.Interface) {
			defer wg.Done()
			data, err := c.Download(ctx, s.path(versionFile))
			if err != nil {
				if errors.Is(err, cloud.ErrNotFound) {
					results[i] = outcome{reachable: true}
				} else {
					results[i] = outcome{err: err}
				}
				return
			}
			stamp, err := meta.DecodeVersionStamp(data)
			if err != nil {
				results[i] = outcome{reachable: true, err: err}
				return
			}
			pending := stamp.Version > known.Version ||
				(stamp.Version == known.Version && stamp.Device != known.Device)
			results[i] = outcome{reachable: true, pending: pending}
		}(i, c)
	}
	wg.Wait()
	var anyReachable bool
	var lastErr error
	for _, r := range results {
		if r.err != nil {
			lastErr = r.err
		}
		if r.reachable {
			anyReachable = true
		}
		if r.pending {
			return true, nil
		}
	}
	if !anyReachable {
		return false, fmt.Errorf("deltasync: no cloud reachable for version check: %w", lastErr)
	}
	return false, nil
}

// cloudState is one cloud's fetched metadata.
type cloudState struct {
	base       *meta.Image
	baseLen    int // sealed base size on the wire
	records    []Record
	frozen     int // records[:frozen] came from chunk objects
	chunkBytes int // sealed size of those chunks
	stamp      meta.VersionStamp
}

// fetchCloud reads and validates one cloud's metadata lineage.
func (s *Store) fetchCloud(ctx context.Context, c cloud.Interface) (*cloudState, error) {
	baseData, err := c.Download(ctx, s.path(baseFile))
	var baseImg *meta.Image
	switch {
	case errors.Is(err, cloud.ErrNotFound):
		baseImg = meta.NewImage()
	case err != nil:
		return nil, fmt.Errorf("deltasync: fetching base from %s: %w", c.Name(), err)
	default:
		plain, err := s.cipher.Open(baseData)
		if err != nil {
			return nil, fmt.Errorf("deltasync: decrypting base from %s: %w", c.Name(), err)
		}
		baseImg, err = meta.DecodeImage(plain)
		if err != nil {
			return nil, fmt.Errorf("deltasync: decoding base from %s: %w", c.Name(), err)
		}
	}

	// The delta log is the frozen chunks (in version order — the
	// zero-padded names sort that way) followed by the active tail.
	chunks, chunkBytes, err := s.fetchChunks(ctx, c)
	if err != nil {
		return nil, err
	}
	var tail []Record
	deltaData, err := c.Download(ctx, s.path(deltaFile))
	switch {
	case errors.Is(err, cloud.ErrNotFound):
		// No delta yet.
	case err != nil:
		return nil, fmt.Errorf("deltasync: fetching delta from %s: %w", c.Name(), err)
	default:
		tail, err = s.decodeDelta(deltaData)
		if err != nil {
			return nil, fmt.Errorf("deltasync: delta from %s: %w", c.Name(), err)
		}
	}

	// Assemble and validate lineage: accepted records must chain from
	// this base. Records of another lineage (chunks or a tail that
	// survived a base rotation or repair) are ignored, and records at
	// or below the accepted head are duplicates from an interrupted
	// freeze (chunk uploaded, tail not yet emptied) — also skipped.
	st := &cloudState{base: baseImg, baseLen: len(baseData), chunkBytes: chunkBytes}
	expect := baseImg.Version
	for part, recs := range [][]Record{chunks, tail} {
		for _, r := range recs {
			if r.BaseVersion != baseImg.Version || r.Version <= expect {
				continue
			}
			if r.Version != expect+1 {
				return nil, fmt.Errorf("deltasync: %s has inconsistent lineage (base v%d, record v%d after v%d)",
					c.Name(), baseImg.Version, r.Version, expect)
			}
			st.records = append(st.records, r)
			expect = r.Version
			if part == 0 {
				st.frozen = len(st.records)
			}
		}
	}
	st.stamp = meta.VersionStamp{Device: baseImg.Device, Version: baseImg.Version}
	if n := len(st.records); n > 0 {
		st.stamp = meta.VersionStamp{Device: st.records[n-1].Device, Version: st.records[n-1].Version}
	}
	return st, nil
}

// fetchChunks downloads every frozen chunk object on c, in version
// order, and returns the concatenated records plus total sealed size.
func (s *Store) fetchChunks(ctx context.Context, c cloud.Interface) ([]Record, int, error) {
	entries, err := c.List(ctx, s.cfg.Dir)
	if err != nil {
		if errors.Is(err, cloud.ErrNotFound) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("deltasync: listing chunks on %s: %w", c.Name(), err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseChunkName(e.Name); ok {
			names = append(names, e.Name)
		}
	}
	sort.Strings(names)
	var records []Record
	var total int
	for _, name := range names {
		blob, err := c.Download(ctx, s.path(name))
		if err != nil {
			if errors.Is(err, cloud.ErrNotFound) {
				continue // deleted between list and read (rotation racing)
			}
			return nil, 0, fmt.Errorf("deltasync: fetching chunk %s from %s: %w", name, c.Name(), err)
		}
		recs, err := s.decodeDelta(blob)
		if err != nil {
			return nil, 0, fmt.Errorf("deltasync: chunk %s from %s: %w", name, c.Name(), err)
		}
		records = append(records, recs...)
		total += len(blob)
	}
	return records, total, nil
}

// Fetch refreshes the cached metadata from the clouds: it collects
// every reachable cloud's state and adopts the newest consistent one.
// It returns the materialized image.
func (s *Store) Fetch(ctx context.Context) (*meta.Image, error) {
	states := make([]*cloudState, len(s.clouds))
	errs := make([]error, len(s.clouds))
	var wg sync.WaitGroup
	for i, c := range s.clouds {
		wg.Add(1)
		go func(i int, c cloud.Interface) {
			defer wg.Done()
			states[i], errs[i] = s.fetchCloud(ctx, c)
		}(i, c)
	}
	wg.Wait()
	var best *cloudState
	var lastErr error
	for i, st := range states {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		if best == nil || st.stamp.Version > best.stamp.Version {
			best = st
		}
	}
	if best == nil {
		return nil, fmt.Errorf("deltasync: no cloud yielded metadata: %w", lastErr)
	}
	s.mu.Lock()
	s.base = best.base
	s.baseLen = best.baseLen
	s.records = best.records
	s.frozen = best.frozen
	s.chunkBytes = best.chunkBytes
	s.stamp = best.stamp
	s.img = s.materializeLocked()
	img := s.img
	s.mu.Unlock()
	return img, nil
}

// Refresh brings the cache up to date with the clouds while moving as
// few bytes as possible — the remote half of the event-driven sync
// pipeline. It first polls the tiny version stamps (CheckRemote); when
// nothing is pending the cached image is returned untouched. When a
// newer commit is advertised it attempts an incremental catch-up: the
// cached record log acts as a delta cursor into the remote version
// chain, so downloading only the delta file and verifying that it
// extends the cursor from the same base suffices. Only when that fails
// (the base rotated, or the delta is unreachable) does it fall back to
// a full Fetch.
//
// The returned image is shared (see CachedShared) and must be treated
// as read-only.
func (s *Store) Refresh(ctx context.Context) (*meta.Image, error) {
	pending, err := s.CheckRemote(ctx)
	if err != nil {
		return nil, err
	}
	if !pending {
		s.cfg.Obs.Counter("deltasync.refresh.noop").Inc()
		return s.CachedShared(), nil
	}
	if img, ok := s.refreshIncremental(ctx); ok {
		s.cfg.Obs.Counter("deltasync.refresh.incremental").Inc()
		return img, nil
	}
	s.cfg.Obs.Counter("deltasync.refresh.full").Inc()
	return s.Fetch(ctx)
}

// refreshIncremental attempts a delta-only catch-up: download just the
// active delta tail from the cloud advertising the newest stamp and
// adopt it if it extends the cached records from the cached base.
// When chunk freezes since the last poll opened a gap between the
// cached head and the tail's first record, only the chunks covering
// that gap are downloaded — never the base.
func (s *Store) refreshIncremental(ctx context.Context) (*meta.Image, bool) {
	// Rank reachable clouds by advertised version, newest first.
	stamps := make([]meta.VersionStamp, len(s.clouds))
	reachable := make([]bool, len(s.clouds))
	var wg sync.WaitGroup
	for i, c := range s.clouds {
		wg.Add(1)
		go func(i int, c cloud.Interface) {
			defer wg.Done()
			data, err := c.Download(ctx, s.path(versionFile))
			if err != nil {
				return
			}
			if st, err := meta.DecodeVersionStamp(data); err == nil {
				stamps[i], reachable[i] = st, true
			}
		}(i, c)
	}
	wg.Wait()
	order := make([]int, 0, len(s.clouds))
	for i := range s.clouds {
		if reachable[i] {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool { return stamps[order[a]].Version > stamps[order[b]].Version })

	for _, i := range order {
		c := s.clouds[i]
		deltaData, err := c.Download(ctx, s.path(deltaFile))
		if err != nil {
			continue // cloud served the stamp but not the delta; try next
		}
		tail, err := s.decodeDelta(deltaData)
		if err != nil {
			return nil, false // corrupt delta: let Fetch's validation decide
		}
		s.mu.Lock()
		lastV := s.stamp.Version
		s.mu.Unlock()
		var tailStart int64 // 0: no tail — everything is frozen
		if len(tail) > 0 {
			tailStart = tail[0].Version
		}
		records := tail
		if len(tail) == 0 || tail[0].Version > lastV+1 {
			// The records between our head and the tail were frozen
			// into chunks since we last looked; backfill just those.
			chunkRecs, ok := s.fetchChunksAfter(ctx, c, lastV)
			if !ok {
				return nil, false
			}
			records = append(chunkRecs, tail...)
		}
		if img, ok := s.adoptRecords(records, tailStart); ok {
			return img, true
		}
		return nil, false // inconsistent with cursor (e.g. base rotated)
	}
	return nil, false
}

// fetchChunksAfter downloads the frozen chunks that may hold records
// with versions beyond afterV: every chunk starting past afterV plus
// the one straddling it. Returns ok=false when the listing or a
// download fails (the caller falls back to a full Fetch).
func (s *Store) fetchChunksAfter(ctx context.Context, c cloud.Interface, afterV int64) ([]Record, bool) {
	entries, err := c.List(ctx, s.cfg.Dir)
	if err != nil {
		return nil, false
	}
	var starts []int64
	for _, e := range entries {
		if v, ok := parseChunkName(e.Name); ok {
			starts = append(starts, v)
		}
	}
	sort.Slice(starts, func(a, b int) bool { return starts[a] < starts[b] })
	// Keep chunks from the last one starting at or before afterV+1.
	lo := 0
	for k, v := range starts {
		if v <= afterV+1 {
			lo = k
		}
	}
	var records []Record
	for _, v := range starts[lo:] {
		blob, err := c.Download(ctx, s.path(chunkName(v)))
		if err != nil {
			return nil, false
		}
		recs, err := s.decodeDelta(blob)
		if err != nil {
			return nil, false
		}
		records = append(records, recs...)
	}
	return records, true
}

// adoptRecords extends the cached record chain with freshly
// downloaded records. The cached chain acts as the delta cursor:
// records at or below its head must agree with it (same device per
// version — overlap from an interrupted freeze is deduplicated, a
// diverging chain is rejected), records beyond it must chain
// contiguously from the cached base. tailStart is the first version
// of the remote active tail (0 when the tail was empty); everything
// before it is known frozen, which moves the local freeze boundary so
// this device's next commit re-uploads only the remote tail's worth
// of records.
func (s *Store) adoptRecords(records []Record, tailStart int64) (*meta.Image, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	img := s.img
	adopted := append([]Record(nil), s.records...)
	expect := s.stamp.Version
	for _, r := range records {
		if r.BaseVersion != s.base.Version {
			return nil, false // another lineage: the base rotated
		}
		if r.Version <= expect {
			// Overlap with the cached chain: verify, then skip.
			idx := int(r.Version - s.base.Version - 1)
			if idx < 0 || idx >= len(adopted) || adopted[idx].Device != r.Device {
				return nil, false
			}
			continue
		}
		if r.Version != expect+1 {
			return nil, false // gap the chunks did not cover
		}
		// Apply COW, so an incremental catch-up costs O(new changes) —
		// not a full replay.
		next, err := img.ApplyCOW(r.Changes, r.Device)
		if err != nil {
			return nil, false // corrupt record; full Fetch will surface it
		}
		next.Version = r.Version
		next.Device = r.Device
		img = next
		adopted = append(adopted, r)
		expect = r.Version
	}
	if len(adopted) <= len(s.records) {
		return nil, false // no progress (rotation empties the delta)
	}
	newFrozen := len(adopted)
	if tailStart > 0 {
		newFrozen = int(tailStart - s.base.Version - 1)
	}
	if newFrozen > len(adopted) {
		newFrozen = len(adopted)
	}
	if newFrozen > s.frozen {
		// Records moved into chunks remotely; account their sealed
		// size toward λ. The exact chunk split is unknown, but the
		// sealed size of the records is the same to within framing.
		if blob, err := s.encodeDelta(adopted[s.frozen:newFrozen]); err == nil {
			s.chunkBytes += len(blob)
		}
		s.frozen = newFrozen
	}
	s.records = adopted
	last := adopted[len(adopted)-1]
	s.stamp = meta.VersionStamp{Device: last.Device, Version: last.Version}
	s.img = img
	return s.img, true
}

// ChangesSince returns the concatenated committed changes with
// versions in (from, to], in commit order, when the cached record
// chain covers that whole span. ok=false means the span crosses a
// base rotation (or references versions the chain does not hold) and
// the caller must fall back to a full image diff. This is how
// applying passes stay O(changes): the chain already names every
// path that moved between two cached versions.
func (s *Store) ChangesSince(from, to int64) (changes []*meta.Change, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < s.base.Version || to > s.stamp.Version || from > to {
		return nil, false
	}
	for _, r := range s.records {
		if r.Version > from && r.Version <= to {
			changes = append(changes, r.Changes...)
		}
	}
	return changes, true
}

// encodeDelta serializes and encrypts the record log as JSON lines.
func (s *Store) encodeDelta(records []Record) ([]byte, error) {
	var buf bytes.Buffer
	for _, r := range records {
		line, err := encodeRecord(r)
		if err != nil {
			return nil, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	sealed, err := s.cipher.Seal(buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("deltasync: encrypting delta: %w", err)
	}
	return sealed, nil
}

func (s *Store) decodeDelta(blob []byte) ([]Record, error) {
	plain, err := s.cipher.Open(blob)
	if err != nil {
		return nil, fmt.Errorf("decrypting delta: %w", err)
	}
	var records []Record
	for _, line := range bytes.Split(plain, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		r, err := decodeRecord(line)
		if err != nil {
			return nil, err
		}
		records = append(records, r)
	}
	return records, nil
}

// Commit writes a new metadata version containing the given changes.
// It must be called while holding the quorum lock, with the cached
// state up to date (call Fetch first when a cloud update is pending).
// The new image version is cached version + 1.
//
// Commit appends a record to the delta log, or — when the delta would
// exceed λ, or a full image write is forced — rotates the base.
// Clouds whose version stamp shows they missed earlier commits are
// repaired with a full base write.
func (s *Store) Commit(ctx context.Context, changes []*meta.Change) (CommitStats, error) {
	for _, c := range changes {
		if err := c.Validate(); err != nil {
			return CommitStats{}, fmt.Errorf("deltasync: commit: %w", err)
		}
	}
	s.mu.Lock()
	prevStamp := s.stamp
	prevBaseLen := s.baseLen
	prevFrozen := s.frozen
	prevChunkBytes := s.chunkBytes
	rec := Record{
		Version:     prevStamp.Version + 1,
		Device:      s.cfg.Device,
		BaseVersion: s.base.Version,
		Changes:     changes,
	}
	newRecords := append(append([]Record(nil), s.records...), rec)
	// COW apply onto the cached image: O(changes), not O(folder) — the
	// cached image was itself produced by materialization or a previous
	// COW apply, so its refcounts are exact. The slow full replay
	// survives only in materializeLocked (fetch paths).
	newImage, err := s.img.ApplyCOW(changes, s.cfg.Device)
	if err != nil {
		s.mu.Unlock()
		return CommitStats{}, fmt.Errorf("deltasync: commit: %w", err)
	}
	newImage.Version = rec.Version
	newImage.Device = rec.Device
	s.mu.Unlock()

	// Encoding and encrypting the full image is O(folder); under
	// LazyBase it runs only when something actually needs the bytes
	// (rotation, or repairing a stale cloud).
	sealBase := sync.OnceValues(func() ([]byte, error) {
		fullImageData, err := newImage.Encode()
		if err != nil {
			return nil, err
		}
		sealed, err := s.cipher.Seal(fullImageData)
		if err != nil {
			return nil, fmt.Errorf("deltasync: encrypting base: %w", err)
		}
		return sealed, nil
	})
	// Only the active tail — the records since the last chunk freeze —
	// is encoded and uploaded. The frozen prefix of the chain already
	// sits in immutable chunk objects, so a commit costs O(recent
	// changes), not O(chain since rotation).
	tail := newRecords[prevFrozen:]
	tailBlob, err := s.encodeDelta(tail)
	if err != nil {
		return CommitStats{}, err
	}
	stampData, err := meta.VersionStamp{Device: s.cfg.Device, Version: rec.Version}.Encode()
	if err != nil {
		return CommitStats{}, err
	}

	baseLen := prevBaseLen
	if !s.cfg.LazyBase {
		sealed, err := sealBase()
		if err != nil {
			return CommitStats{}, err
		}
		baseLen = len(sealed)
	}
	lambda := int(s.cfg.LambdaFrac * float64(baseLen))
	if lambda < s.cfg.LambdaMin {
		lambda = s.cfg.LambdaMin
	}
	// λ measures the whole delta — frozen chunks plus tail — against
	// the base, exactly as before chunking.
	rotate := prevChunkBytes+len(tailBlob) > lambda
	// A tail past the chunk cap is frozen with this commit: the tail
	// (including the new record) is uploaded once as an immutable
	// chunk and the active tail restarts empty.
	freeze := !rotate && len(tailBlob) > s.cfg.ChunkBytes
	var chunk string
	if freeze {
		chunk = chunkName(tail[0].Version)
	}
	emptyTail, err := s.encodeDelta(nil)
	if err != nil {
		return CommitStats{}, err
	}

	stats := CommitStats{
		Version:     rec.Version,
		BaseRotated: rotate,
		DeltaBytes:  len(tailBlob),
	}
	newBaseLen := prevBaseLen
	if rotate || !s.cfg.LazyBase {
		sealed, err := sealBase()
		if err != nil {
			return stats, err
		}
		stats.BaseBytes = len(sealed)
		stats.FullImageBytes = len(sealed)
		if rotate {
			newBaseLen = len(sealed)
		}
	}

	var wg sync.WaitGroup
	okCh := make([]bool, len(s.clouds))
	for i, c := range s.clouds {
		wg.Add(1)
		go func(i int, c cloud.Interface) {
			defer wg.Done()
			okCh[i] = s.commitToCloud(ctx, c, prevStamp, rotate, freeze, chunk, sealBase, tailBlob, emptyTail, stampData)
		}(i, c)
	}
	wg.Wait()
	for _, ok := range okCh {
		if ok {
			stats.CloudsOK++
		}
	}
	if stats.CloudsOK < s.Quorum() {
		return stats, fmt.Errorf("%w: %d/%d", ErrNoQuorum, stats.CloudsOK, len(s.clouds))
	}

	s.mu.Lock()
	switch {
	case rotate:
		s.base = newImage
		s.records = nil
		s.frozen = 0
		s.chunkBytes = 0
	case freeze:
		s.records = newRecords
		s.frozen = len(newRecords)
		s.chunkBytes = prevChunkBytes + len(tailBlob)
	default:
		s.records = newRecords
	}
	s.baseLen = newBaseLen
	s.stamp = meta.VersionStamp{Device: s.cfg.Device, Version: rec.Version}
	s.img = newImage
	s.mu.Unlock()
	return stats, nil
}

// commitToCloud writes this commit to one cloud. A cloud that is
// up-to-date (its stamp equals prevStamp) receives only the delta
// tail (or, on a freeze, the frozen chunk plus an empty tail; on
// rotation, the new base); a stale or empty cloud receives a full
// repair (base + empty delta). sealBase produces the sealed full
// image on demand (memoized), so commits that write no base never pay
// for encoding one.
//
// Write order is crash-safe: chunk before tail before stamp, so a
// partial commit leaves at worst an extra chunk whose records overlap
// the old tail — readers deduplicate by version — and base writes
// precede chunk deletion, so leftover chunks of the old lineage are
// filtered by their BaseVersion until the next rotation removes them.
func (s *Store) commitToCloud(ctx context.Context, c cloud.Interface, prevStamp meta.VersionStamp,
	rotate, freeze bool, chunk string, sealBase func() ([]byte, error), tailBlob, emptyTail, stampData []byte) bool {

	upToDate := false
	if data, err := c.Download(ctx, s.path(versionFile)); err == nil {
		if st, err := meta.DecodeVersionStamp(data); err == nil && st == prevStamp {
			upToDate = true
		}
	} else if prevStamp.Version == 0 && errors.Is(err, cloud.ErrNotFound) {
		upToDate = true // brand-new cloud at genesis
	}

	switch {
	case rotate || !upToDate:
		sealedBase, err := sealBase()
		if err != nil {
			return false
		}
		if err := c.Upload(ctx, s.path(baseFile), sealedBase); err != nil {
			return false
		}
		// Chunks of the replaced lineage are dead: best-effort removal;
		// survivors are ignored by readers (BaseVersion mismatch).
		s.deleteChunks(ctx, c)
		if err := c.Upload(ctx, s.path(deltaFile), emptyTail); err != nil {
			return false
		}
	case freeze:
		if err := c.Upload(ctx, s.path(chunk), tailBlob); err != nil {
			return false
		}
		if err := c.Upload(ctx, s.path(deltaFile), emptyTail); err != nil {
			return false
		}
	default:
		if err := c.Upload(ctx, s.path(deltaFile), tailBlob); err != nil {
			return false
		}
	}
	return c.Upload(ctx, s.path(versionFile), stampData) == nil
}

// deleteChunks removes every frozen chunk object on c, best effort.
func (s *Store) deleteChunks(ctx context.Context, c cloud.Interface) {
	entries, err := c.List(ctx, s.cfg.Dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if _, ok := parseChunkName(e.Name); ok {
			_ = c.Delete(ctx, s.path(e.Name))
		}
	}
}

func encodeRecord(r Record) ([]byte, error) {
	data, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("deltasync: encoding record v%d: %w", r.Version, err)
	}
	return data, nil
}

func decodeRecord(line []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(line, &r); err != nil {
		return Record{}, fmt.Errorf("deltasync: decoding record: %w", err)
	}
	return r, nil
}
