package deltasync

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"unidrive/internal/cloud"
	"unidrive/internal/cloudsim"
	"unidrive/internal/meta"
	"unidrive/internal/metacrypt"
)

func testCipher(t *testing.T) *metacrypt.Cipher {
	t.Helper()
	c, err := metacrypt.New(metacrypt.DES, "test-passphrase")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// rig bundles a metadata store with its backing clouds.
type rig struct {
	stores []*cloudsim.Store
	flaky  []*cloudsim.Flaky
	clouds []cloud.Interface
}

func newRig(n int) *rig {
	r := &rig{}
	for i := 0; i < n; i++ {
		st := cloudsim.NewStore(fmt.Sprintf("c%d", i), 0)
		fl := cloudsim.NewFlaky(cloudsim.NewDirect(st), 0, int64(i+1))
		r.stores = append(r.stores, st)
		r.flaky = append(r.flaky, fl)
		r.clouds = append(r.clouds, fl)
	}
	return r
}

func (r *rig) store(t *testing.T, device string, cfg Config) *Store {
	t.Helper()
	cfg.Device = device
	return New(r.clouds, testCipher(t), cfg)
}

func addChange(path, segID string) *meta.Change {
	return &meta.Change{
		Type: meta.ChangeAdd,
		Path: path,
		Snapshot: &meta.Snapshot{
			Path: path, Size: 100, Device: "dev",
			ModTime: time.Unix(1, 0), SegmentIDs: []string{segID},
		},
		Segments: []*meta.Segment{{ID: segID, Length: 100, K: 3, N: 10}},
		Time:     time.Unix(1, 0),
	}
}

func TestCommitAndFetchRoundTrip(t *testing.T) {
	r := newRig(5)
	s1 := r.store(t, "d1", Config{})
	stats, err := s1.Commit(context.Background(), []*meta.Change{addChange("a.txt", "s1")})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Version != 1 || stats.CloudsOK != 5 {
		t.Fatalf("stats = %+v", stats)
	}
	// A different device fetches and sees the file.
	s2 := r.store(t, "d2", Config{})
	img, err := s2.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if img.Version != 1 {
		t.Fatalf("fetched version %d, want 1", img.Version)
	}
	if img.Lookup("a.txt").Current() == nil {
		t.Fatal("fetched image missing committed file")
	}
	if _, ok := img.Segment("s1"); !ok {
		t.Fatal("fetched image missing segment pool entry")
	}
}

func TestVersionsIncrementAcrossCommits(t *testing.T) {
	r := newRig(3)
	s := r.store(t, "d1", Config{})
	for i := 1; i <= 4; i++ {
		stats, err := s.Commit(context.Background(), []*meta.Change{
			addChange(fmt.Sprintf("f%d", i), fmt.Sprintf("s%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Version != int64(i) {
			t.Fatalf("commit %d got version %d", i, stats.Version)
		}
	}
	if st := s.Stamp(); st.Version != 4 || st.Device != "d1" {
		t.Fatalf("stamp = %+v", st)
	}
}

func TestCheckRemoteDetectsPendingUpdate(t *testing.T) {
	r := newRig(3)
	s1 := r.store(t, "d1", Config{})
	s2 := r.store(t, "d2", Config{})

	pending, err := s2.CheckRemote(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pending {
		t.Fatal("pending update reported on empty clouds")
	}
	if _, err := s1.Commit(context.Background(), []*meta.Change{addChange("a", "s1")}); err != nil {
		t.Fatal(err)
	}
	pending, err = s2.CheckRemote(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !pending {
		t.Fatal("pending update not detected after commit")
	}
	if _, err := s2.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	pending, err = s2.CheckRemote(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pending {
		t.Fatal("pending still reported after fetch")
	}
}

func TestCheckRemoteIsCheap(t *testing.T) {
	// The whole point of the version file: a no-change check must not
	// download base or delta.
	r := newRig(3)
	s1 := r.store(t, "d1", Config{})
	if _, err := s1.Commit(context.Background(), []*meta.Change{addChange("a", "s1")}); err != nil {
		t.Fatal(err)
	}
	rec := cloudsim.NewRecorder(cloudsim.NewDirect(r.stores[0]))
	probe := New([]cloud.Interface{rec}, testCipher(t), Config{Device: "dX"})
	if _, err := probe.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := rec.Counts().Download
	for i := 0; i < 5; i++ {
		pending, err := probe.CheckRemote(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if pending {
			t.Fatal("spurious pending")
		}
	}
	// 5 checks = 5 version-file downloads, nothing else.
	if got := rec.Counts().Download - before; got != 5 {
		t.Fatalf("CheckRemote used %d downloads for 5 checks, want 5", got)
	}
}

func TestDeltaAccumulatesThenRotates(t *testing.T) {
	r := newRig(3)
	// Tiny λ floor so rotation happens quickly.
	s := r.store(t, "d1", Config{LambdaMin: 1500, LambdaFrac: 0.0001})
	var rotated, appended int
	for i := 0; i < 12; i++ {
		stats, err := s.Commit(context.Background(), []*meta.Change{
			addChange(fmt.Sprintf("file-%02d", i), fmt.Sprintf("seg-%02d", i))})
		if err != nil {
			t.Fatal(err)
		}
		if stats.BaseRotated {
			rotated++
		} else {
			appended++
		}
	}
	if rotated == 0 {
		t.Fatal("delta never merged into base")
	}
	if appended == 0 {
		t.Fatal("every commit rotated the base; delta-sync inert")
	}
	// State after mixed commits is still correct for a new device.
	img, err := r.store(t, "d2", Config{}).Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(img.Paths()); got != 12 {
		t.Fatalf("fetched %d files, want 12", got)
	}
	if img.Version != 12 {
		t.Fatalf("fetched version %d, want 12", img.Version)
	}
}

func TestDeltaTrafficSmallerThanFullImage(t *testing.T) {
	// Fig 13's claim: with Delta-sync, cumulative metadata traffic is
	// far below uploading the full image on every commit (the paper
	// measured a 13.1× reduction over 1024 file updates).
	r := newRig(3)
	s := r.store(t, "d1", Config{})
	var withDelta, withoutDelta int64
	for i := 0; i < 100; i++ {
		stats, err := s.Commit(context.Background(), []*meta.Change{
			addChange(fmt.Sprintf("dir/file-%03d.dat", i), fmt.Sprintf("segment-%03d", i))})
		if err != nil {
			t.Fatal(err)
		}
		if stats.BaseRotated {
			withDelta += int64(stats.BaseBytes)
		} else {
			withDelta += int64(stats.DeltaBytes)
		}
		withoutDelta += int64(stats.FullImageBytes)
	}
	if withDelta*2 >= withoutDelta {
		t.Fatalf("delta-sync traffic %dB not substantially below full-image traffic %dB",
			withDelta, withoutDelta)
	}
}

func TestCommitQuorumFailure(t *testing.T) {
	r := newRig(5)
	for i := 0; i < 3; i++ {
		r.flaky[i].SetDown(true)
	}
	s := r.store(t, "d1", Config{})
	_, err := s.Commit(context.Background(), []*meta.Change{addChange("a", "s1")})
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
}

func TestStaleCloudRepairedOnNextCommit(t *testing.T) {
	r := newRig(3)
	s := r.store(t, "d1", Config{})
	// First commit reaches all.
	if _, err := s.Commit(context.Background(), []*meta.Change{addChange("a", "s1")}); err != nil {
		t.Fatal(err)
	}
	// Cloud 0 misses the second commit.
	r.flaky[0].SetDown(true)
	if _, err := s.Commit(context.Background(), []*meta.Change{addChange("b", "s2")}); err != nil {
		t.Fatal(err)
	}
	// Cloud 0 recovers; third commit must repair it.
	r.flaky[0].SetDown(false)
	if _, err := s.Commit(context.Background(), []*meta.Change{addChange("c", "s3")}); err != nil {
		t.Fatal(err)
	}
	// A reader that can only see cloud 0 must observe all three files.
	only0 := New([]cloud.Interface{cloudsim.NewDirect(r.stores[0])}, testCipher(t), Config{Device: "dR"})
	img, err := only0.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(img.Paths()); got != 3 {
		t.Fatalf("repaired cloud has %d files, want 3 (paths %v)", got, img.Paths())
	}
	if img.Version != 3 {
		t.Fatalf("repaired cloud at version %d, want 3", img.Version)
	}
}

func TestFetchPrefersNewestCloud(t *testing.T) {
	r := newRig(3)
	s := r.store(t, "d1", Config{})
	if _, err := s.Commit(context.Background(), []*meta.Change{addChange("a", "s1")}); err != nil {
		t.Fatal(err)
	}
	r.flaky[2].SetDown(true) // cloud 2 stays at version 1
	if _, err := s.Commit(context.Background(), []*meta.Change{addChange("b", "s2")}); err != nil {
		t.Fatal(err)
	}
	r.flaky[2].SetDown(false)

	img, err := r.store(t, "d2", Config{}).Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if img.Version != 2 {
		t.Fatalf("fetch adopted stale cloud: version %d, want 2", img.Version)
	}
}

func TestFetchAllCloudsDown(t *testing.T) {
	r := newRig(3)
	for _, f := range r.flaky {
		f.SetDown(true)
	}
	if _, err := r.store(t, "d1", Config{}).Fetch(context.Background()); err == nil {
		t.Fatal("fetch succeeded with all clouds down")
	}
}

func TestCheckRemoteAllCloudsDown(t *testing.T) {
	r := newRig(3)
	for _, f := range r.flaky {
		f.SetDown(true)
	}
	if _, err := r.store(t, "d1", Config{}).CheckRemote(context.Background()); err == nil {
		t.Fatal("version check succeeded with all clouds down")
	}
}

func TestCommitRejectsInvalidChange(t *testing.T) {
	r := newRig(3)
	s := r.store(t, "d1", Config{})
	_, err := s.Commit(context.Background(), []*meta.Change{{Type: meta.ChangeAdd, Path: ""}})
	if err == nil {
		t.Fatal("invalid change committed")
	}
}

func TestMetadataEncryptedAtRest(t *testing.T) {
	r := newRig(3)
	s := r.store(t, "d1", Config{})
	if _, err := s.Commit(context.Background(), []*meta.Change{addChange("secret-name.txt", "s1")}); err != nil {
		t.Fatal(err)
	}
	raw := cloudsim.NewDirect(r.stores[0])
	for _, f := range []string{baseFile, deltaFile} {
		data, err := raw.Download(context.Background(), DefaultDir+"/"+f)
		if err != nil {
			if errors.Is(err, cloud.ErrNotFound) {
				continue
			}
			t.Fatal(err)
		}
		if containsSubstring(data, "secret-name") {
			t.Fatalf("%s stored with plaintext file names", f)
		}
	}
}

func containsSubstring(data []byte, s string) bool {
	for i := 0; i+len(s) <= len(data); i++ {
		if string(data[i:i+len(s)]) == s {
			return true
		}
	}
	return false
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with no clouds did not panic")
		}
	}()
	New(nil, testCipher(t), Config{Device: "d"})
}

func TestConcurrentDevicesSerializedCommits(t *testing.T) {
	// Two stores committing in turn (as the quorum lock enforces);
	// each must fetch before committing to chain versions correctly.
	r := newRig(3)
	s1 := r.store(t, "d1", Config{})
	s2 := r.store(t, "d2", Config{})
	if _, err := s1.Commit(context.Background(), []*meta.Change{addChange("a", "s1")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats, err := s2.Commit(context.Background(), []*meta.Change{addChange("b", "s2")})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Version != 2 {
		t.Fatalf("second device committed version %d, want 2", stats.Version)
	}
	img, err := s1.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Paths()) != 2 || img.Device != "d2" {
		t.Fatalf("final image: %v by %s", img.Paths(), img.Device)
	}
}
