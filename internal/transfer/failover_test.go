package transfer

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"unidrive/internal/cloud"
	"unidrive/internal/cloudsim"
	"unidrive/internal/erasure"
	"unidrive/internal/health"
	"unidrive/internal/obs"
	"unidrive/internal/sched"
	"unidrive/internal/vclock"
)

// guardedRig is a directRig variant with the full resilience stack
// per cloud: Guard(Recorder(Flaky(Direct))). The Recorder sits inside
// the Guard, so breaker rejections never reach it — its counts are
// exactly the requests that went out to the (simulated) network.
type guardedRig struct {
	stores  []*cloudsim.Store
	flaky   []*cloudsim.Flaky
	recs    []*cloudsim.Recorder
	tracker *health.Tracker
	reg     *obs.Registry
	engine  *Engine
	names   []string
}

func newGuardedRig(t *testing.T, n int, cfg Config) *guardedRig {
	t.Helper()
	r := &guardedRig{reg: obs.NewRegistry()}
	r.tracker = health.NewTracker(health.Config{
		TripOnUnavailable: true,
		Clock:             vclock.Real{},
		Seed:              7,
		Obs:               r.reg,
	})
	var clouds []cloud.Interface
	for i := 0; i < n; i++ {
		st := cloudsim.NewStore(fmt.Sprintf("c%d", i), 0)
		fl := cloudsim.NewFlaky(cloudsim.NewDirect(st), 0, int64(i+1))
		rec := cloudsim.NewRecorder(fl)
		r.stores = append(r.stores, st)
		r.flaky = append(r.flaky, fl)
		r.recs = append(r.recs, rec)
		r.names = append(r.names, st.Name())
		clouds = append(clouds, r.tracker.Wrap(rec))
	}
	cfg.Health = r.tracker
	cfg.Obs = r.reg
	r.engine = New(clouds, sched.NewProber(0), cfg)
	return r
}

// TestUploadRoutesAroundOpenBreaker is the upload acceptance case:
// with one of four clouds in full outage, a k=4, n=8 upload must
// complete; after the breaker trips, no request may reach the dead
// cloud, and its blocks must land on the healthy clouds within the
// per-cloud placement bound.
func TestUploadRoutesAroundOpenBreaker(t *testing.T) {
	p := sched.Params{N: 4, K: 4, Kr: 2, Ks: 2} // fair 2, normal 8, max 3/cloud
	r := newGuardedRig(t, 4, Config{})
	r.flaky[3].SetDown(true)

	seg := make([]byte, 4096)
	rand.New(rand.NewSource(3)).Read(seg)
	coder, err := erasure.NewCoder(p.K, p.CodeN())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sched.NewUploadPlan(p, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.engine.UploadSegment(context.Background(), plan, "seg1",
		coderSource(t, coder, seg), nil); err != nil {
		t.Fatalf("upload with one dead cloud: %v", err)
	}
	if !plan.Available() {
		t.Fatal("plan not available")
	}
	if !plan.Reliable() {
		t.Fatal("plan not reliable: live clouds lack their fair share")
	}

	// The dead cloud saw only the requests launched before its first
	// outage error tripped the breaker (its initial fair share at
	// most); everything after the trip was rejected locally.
	if got := r.recs[3].Counts().Total(); got < 1 || got > p.FairShare() {
		t.Errorf("dead cloud saw %d requests, want 1..%d (pre-trip only)", got, p.FairShare())
	}
	if st := r.tracker.Breaker("c3").State(); st != health.Open {
		t.Errorf("breaker state = %v, want Open", st)
	}
	if n := r.reg.Counter("health.breaker.c3.opened").Value(); n != 1 {
		t.Errorf("opened transitions = %d, want 1", n)
	}

	// All 8 normal blocks landed on the three healthy clouds without
	// breaking the per-cloud bound.
	placement := plan.Placement()
	perCloud := make(map[string]int)
	normal := 0
	for b, c := range placement {
		perCloud[c]++
		if b < p.NormalBlocks() {
			normal++
		}
	}
	if perCloud["c3"] != 0 {
		t.Errorf("dead cloud holds %d blocks", perCloud["c3"])
	}
	for c, n := range perCloud {
		if n > p.MaxPerCloud() {
			t.Errorf("%s holds %d blocks, above MaxPerCloud=%d", c, n, p.MaxPerCloud())
		}
	}
	if normal != p.NormalBlocks() {
		t.Errorf("%d of %d normal blocks placed", normal, p.NormalBlocks())
	}
	if n := r.reg.Counter("transfer.up.failover_blocks").Value(); n < int64(p.FairShare()) {
		t.Errorf("failover_blocks = %d, want >= %d", n, p.FairShare())
	}

	// The blocks physically exist where the placement claims, with
	// the right content.
	for blockID, cloudName := range placement {
		var store *cloudsim.Store
		for _, s := range r.stores {
			if s.Name() == cloudName {
				store = s
			}
		}
		data, err := cloudsim.NewDirect(store).Download(context.Background(),
			r.engine.BlockPath("seg1", blockID))
		if err != nil {
			t.Fatalf("block %d missing on %s: %v", blockID, cloudName, err)
		}
		if want := coder.EncodeBlocks(seg, []int{blockID})[0]; !bytes.Equal(data, want) {
			t.Fatalf("block %d content mismatch", blockID)
		}
	}
}

// TestHedgedDownloadWithStalledCloud is the download acceptance case:
// one cloud accepts requests and never answers. Each stalled block
// must receive exactly one duplicate (hedged) request on a spare
// cloud, the duplicates win, the stalled losers are cancelled, and
// the download completes at the healthy clouds' latency instead of
// hanging on the stall.
func TestHedgedDownloadWithStalledCloud(t *testing.T) {
	r := newGuardedRig(t, 3, Config{
		HedgeFallbackDelay: 50 * time.Millisecond,
	})

	// Two blocks, each replicated on the (to-be) stalled cloud c0 and
	// one healthy spare; k=2 means both are needed.
	content := map[int][]byte{0: []byte("block-zero"), 1: []byte("block-one")}
	locations := map[int][]string{0: {"c0", "c1"}, 1: {"c0", "c2"}}
	ctx := context.Background()
	for blockID, clouds := range locations {
		for _, name := range clouds {
			for i, s := range r.stores {
				if s.Name() == name {
					if err := cloudsim.NewDirect(r.stores[i]).Upload(ctx,
						r.engine.BlockPath("segH", blockID), content[blockID]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	r.flaky[0].SetStall(true)

	dplan, err := sched.NewDownloadPlan(2, locations)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	blocks, err := r.engine.DownloadSegment(ctx, dplan, "segH")
	if err != nil {
		t.Fatalf("hedged download: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("download took %v: latency not bounded by healthy clouds", elapsed)
	}
	for blockID, want := range content {
		if !bytes.Equal(blocks[blockID], want) {
			t.Errorf("block %d = %q, want %q", blockID, blocks[blockID], want)
		}
	}

	// Exactly one duplicate per stalled block, and the stalled losers
	// were cancelled (their calls returned via ctx, counted below).
	if n := r.reg.Counter("transfer.down.hedges").Value(); n != 2 {
		t.Errorf("hedges issued = %d, want 2", n)
	}
	if n := r.reg.Counter("transfer.down.hedge_wins").Value(); n != 2 {
		t.Errorf("hedge_wins = %d, want 2", n)
	}
	if n := r.reg.Counter("transfer.down.hedge_losses").Value(); n != 0 {
		t.Errorf("hedge_losses = %d, want 0", n)
	}
	if n := r.reg.Counter("transfer.down.hedge_cancelled").Value(); n != 2 {
		t.Errorf("hedge_cancelled (drained losers) = %d, want 2", n)
	}
	// The stalled cloud saw exactly one request per block (no retry
	// storm), the spares exactly one each.
	if got := r.recs[0].Counts().Download; got != 2 {
		t.Errorf("stalled cloud download calls = %d, want 2", got)
	}
	if got := r.flaky[0].Stalls(); got != 2 {
		t.Errorf("stalls entered = %d, want 2", got)
	}
	for i := 1; i <= 2; i++ {
		if got := r.recs[i].Counts().Download; got != 1 {
			t.Errorf("spare c%d download calls = %d, want 1", i, got)
		}
	}
	// The stall is a latency fault, not a health verdict: cancelled
	// requests must not have tripped c0's breaker.
	if st := r.tracker.Breaker("c0").State(); st != health.Closed {
		t.Errorf("stalled cloud breaker = %v, want Closed (cancellations are not failures)", st)
	}
}
