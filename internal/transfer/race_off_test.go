//go:build !race

package transfer

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
