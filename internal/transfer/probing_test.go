package transfer

import (
	"context"
	"testing"
	"time"

	"unidrive/internal/cloud"
	"unidrive/internal/cloudsim"
	"unidrive/internal/sched"
	"unidrive/internal/vclock"
)

func TestProbingObservesAllTraffic(t *testing.T) {
	prober := sched.NewProber(0)
	store := cloudsim.NewStore("c1", 0)
	p := NewProbing(cloudsim.NewDirect(store), prober, vclock.Real{})
	ctx := context.Background()

	if err := p.Upload(ctx, "meta/version", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if prober.Samples("c1", sched.Up) != 1 {
		t.Fatal("upload not observed")
	}
	if _, err := p.Download(ctx, "meta/version"); err != nil {
		t.Fatal(err)
	}
	if prober.Samples("c1", sched.Down) != 1 {
		t.Fatal("download not observed")
	}
	if _, err := p.List(ctx, "meta"); err != nil {
		t.Fatal(err)
	}
	if prober.Samples("c1", sched.Down) != 2 {
		t.Fatal("list not observed as download traffic")
	}
	if p.Name() != "c1" {
		t.Fatal("name not forwarded")
	}
}

func TestProbingNotFoundIsNotAFailureSignal(t *testing.T) {
	prober := sched.NewProber(0)
	p := NewProbing(cloudsim.NewDirect(cloudsim.NewStore("c1", 0)), prober, vclock.Real{})
	if _, err := p.Download(context.Background(), "ghost"); err == nil {
		t.Fatal("expected not-found")
	}
	// A 404 is a healthy response: it must not record a zero-throughput
	// sample that would sink the cloud in the ranking.
	if prober.Samples("c1", sched.Down) != 0 {
		t.Fatal("NotFound recorded as a throughput sample")
	}
}

func TestProbingTransientFailureSinksRanking(t *testing.T) {
	prober := sched.NewProber(0)
	flaky := cloudsim.NewFlaky(cloudsim.NewDirect(cloudsim.NewStore("bad", 0)), 1.0, 1)
	bad := NewProbing(flaky, prober, vclock.Real{})
	good := NewProbing(cloudsim.NewDirect(cloudsim.NewStore("good", 0)), prober, vclock.Real{})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		_ = bad.Upload(ctx, "f", []byte("x"))
		_ = good.Upload(ctx, "f", []byte("x"))
	}
	ranked := prober.Rank([]string{"bad", "good"}, sched.Up)
	if ranked[0] != "good" {
		t.Fatalf("rank = %v; failing cloud should sink", ranked)
	}
}

func TestProbingDeleteAndCreateDirPassThrough(t *testing.T) {
	prober := sched.NewProber(0)
	store := cloudsim.NewStore("c1", 0)
	p := NewProbing(cloudsim.NewDirect(store), prober, vclock.Real{})
	ctx := context.Background()
	if err := p.CreateDir(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if err := p.Upload(ctx, "d/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if store.FileCount() != 0 {
		t.Fatal("delete not forwarded")
	}
}

func TestProbingThroughputReflectsClock(t *testing.T) {
	prober := sched.NewProber(0)
	clk := vclock.NewScaled(100)
	// Interface compliance and a sanity check that durations come
	// from the supplied clock (non-zero throughput on instant store).
	var c cloud.Interface = NewProbing(cloudsim.NewDirect(cloudsim.NewStore("c1", 0)), prober, clk)
	if err := c.Upload(context.Background(), "f", make([]byte, 1<<16)); err != nil {
		t.Fatal(err)
	}
	if tp := prober.Throughput("c1", sched.Up); tp <= 0 {
		t.Fatalf("throughput = %v", tp)
	}
	_ = time.Now
}
