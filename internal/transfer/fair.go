package transfer

import (
	"sync"

	"unidrive/internal/obs"
)

// FairScheduler arbitrates per-cloud connection slots among the
// tenants of one process. Every Engine in a multi-tenant daemon keeps
// its own plans, breakers, and metrics, but each launched transfer
// must additionally claim a (cloud, tenant) slot here, so the
// process-wide connection budget to each cloud is enforced once and
// shared fairly instead of multiplying by the number of tenants.
//
// The policy is weighted max-min with work conservation:
//
//   - A tenant's fair share on a cloud is conns·w/W (at least 1),
//     where W sums the weights of the tenants currently contending
//     for that cloud — holding slots or waiting for one. Shares
//     therefore adapt as tenants come and go.
//   - A tenant under its share gets any free slot.
//   - A tenant at or above its share may exceed it — the scheduler is
//     work-conserving — but only while no other tenant is waiting
//     below its own share. The moment an under-share tenant waits,
//     over-share grants stop, so every slot freed by a completion
//     falls to the waiter.
//
// That last rule is the starvation bound: a saturating tenant holds
// at most conns slots on a cloud, so a newly active tenant reaches
// its full share within at most conns block completions of that cloud
// — no preemption needed, transfers are never aborted.
//
// Waiting is advisory and edge-triggered: a refused Acquire leaves a
// waiting mark that biases future grants, and Changed returns a
// channel closed on the next state change so refused engines can
// sleep instead of spinning. Engines clear their marks with EndBatch
// when a batch finishes; a stale mark meanwhile only makes the
// scheduler less work-conserving, never unfair.
type FairScheduler struct {
	mu      sync.Mutex
	conns   int
	reg     *obs.Registry
	weights map[string]float64
	held    map[string]map[string]int  // cloud -> tenant -> slots held
	waiting map[string]map[string]bool // cloud -> tenant -> refused and not yet served
	changed chan struct{}
}

// NewFairScheduler creates a scheduler granting at most connsPerCloud
// concurrent slots per cloud across all tenants. reg (which may be
// nil) receives the scheduler-wide grant/deny counters.
func NewFairScheduler(connsPerCloud int, reg *obs.Registry) *FairScheduler {
	if connsPerCloud <= 0 {
		connsPerCloud = DefaultConnsPerCloud
	}
	return &FairScheduler{
		conns:   connsPerCloud,
		reg:     reg,
		weights: make(map[string]float64),
		held:    make(map[string]map[string]int),
		waiting: make(map[string]map[string]bool),
		changed: make(chan struct{}),
	}
}

// Conns returns the per-cloud slot budget.
func (f *FairScheduler) Conns() int { return f.conns }

// SetWeight sets the tenant's scheduling weight (its quota relative
// to other tenants). Weights default to 1; w <= 0 resets to the
// default.
func (f *FairScheduler) SetWeight(tenant string, w float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w <= 0 {
		delete(f.weights, tenant)
	} else {
		f.weights[tenant] = w
	}
	f.signalLocked()
}

func (f *FairScheduler) weightLocked(tenant string) float64 {
	if w, ok := f.weights[tenant]; ok {
		return w
	}
	return 1
}

// shareLocked computes the tenant's current fair share on the cloud:
// its weight's fraction of the slot budget over all contenders
// (holders and waiters, plus the asking tenant itself), floored, but
// never below one slot — every contender may always make progress.
func (f *FairScheduler) shareLocked(cloudName, tenant string) int {
	total := f.weightLocked(tenant)
	for u := range f.held[cloudName] {
		if u != tenant {
			total += f.weightLocked(u)
		}
	}
	for u := range f.waiting[cloudName] {
		if u != tenant && f.held[cloudName][u] == 0 {
			total += f.weightLocked(u)
		}
	}
	s := int(float64(f.conns) * f.weightLocked(tenant) / total)
	if s < 1 {
		s = 1
	}
	return s
}

// grantableLocked reports whether the tenant may take a free slot on
// the cloud right now under the fairness policy (a free slot must
// exist; the caller checks occupancy).
func (f *FairScheduler) grantableLocked(cloudName, tenant string) bool {
	if f.held[cloudName][tenant] < f.shareLocked(cloudName, tenant) {
		return true
	}
	// At or above share: work-conserving grant, unless an under-share
	// tenant is waiting — then the free slot is reserved for it.
	for u := range f.waiting[cloudName] {
		if u != tenant && f.held[cloudName][u] < f.shareLocked(cloudName, u) {
			return false
		}
	}
	return true
}

// Acquire claims one slot for (cloud, tenant). On refusal it leaves a
// waiting mark — reserving freed capacity for this tenant until it is
// served or calls EndBatch — and returns false; the caller should
// block on Changed and retry.
func (f *FairScheduler) Acquire(cloudName, tenant string) bool {
	return f.acquire(cloudName, tenant, true)
}

// TryAcquire is Acquire without the waiting mark: refusal reserves
// nothing. Hedged duplicate requests use it — a hedge is opportunistic
// spare capacity and must never hold back another tenant's real work.
func (f *FairScheduler) TryAcquire(cloudName, tenant string) bool {
	return f.acquire(cloudName, tenant, false)
}

func (f *FairScheduler) acquire(cloudName, tenant string, markWaiting bool) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := f.held[cloudName]
	used := 0
	for _, n := range h {
		used += n
	}
	if used < f.conns && f.grantableLocked(cloudName, tenant) {
		if h == nil {
			h = make(map[string]int)
			f.held[cloudName] = h
		}
		h[tenant]++
		if w := f.waiting[cloudName]; w[tenant] {
			delete(w, tenant)
		}
		f.reg.Counter("fair.granted").Inc()
		// A served waiter shrinks the contender set and can lift the
		// over-share embargo for everyone else.
		f.signalLocked()
		return true
	}
	if markWaiting {
		w := f.waiting[cloudName]
		if w == nil {
			w = make(map[string]bool)
			f.waiting[cloudName] = w
		}
		w[tenant] = true
	}
	f.reg.Counter("fair.denied").Inc()
	return false
}

// Release returns one slot for (cloud, tenant) and wakes waiters.
func (f *FairScheduler) Release(cloudName, tenant string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := f.held[cloudName]
	if h[tenant] > 0 {
		h[tenant]--
		if h[tenant] == 0 {
			delete(h, tenant)
		}
	}
	f.signalLocked()
}

// EndBatch clears the tenant's waiting marks on every cloud. Engines
// call it when a batch returns so a tenant with no work in flight
// stops reserving freed capacity.
func (f *FairScheduler) EndBatch(tenant string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, w := range f.waiting {
		delete(w, tenant)
	}
	f.signalLocked()
}

// Changed returns a channel closed on the next scheduler state change
// (grant, release, weight change, or batch end). Capture it BEFORE a
// final Acquire attempt and block on it after a refusal: any change
// between the capture and the block still closes the captured
// channel, so the wakeup cannot be lost.
func (f *FairScheduler) Changed() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.changed
}

// Held reports the slots currently held by (cloud, tenant) — test and
// debug introspection.
func (f *FairScheduler) Held(cloudName, tenant string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.held[cloudName][tenant]
}

// signalLocked closes the current generation's channel and starts a
// new one — a broadcast wakeup with no waiter registry.
func (f *FairScheduler) signalLocked() {
	close(f.changed)
	f.changed = make(chan struct{})
}
