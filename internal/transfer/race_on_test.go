//go:build race

package transfer

// raceEnabled reports that the race detector is active; timing-shaped
// tests (scaled-clock bandwidth comparisons) are skipped under it
// because its ~10x compute slowdown distorts simulated time.
const raceEnabled = true
