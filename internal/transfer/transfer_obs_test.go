package transfer

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"unidrive/internal/cloud"
	"unidrive/internal/cloudsim"
	"unidrive/internal/erasure"
	"unidrive/internal/obs"
	"unidrive/internal/sched"
	"unidrive/internal/vclock"
)

// TestDownloadRetryExhaustion drives every download against clouds
// that fail 100% of calls: each block must burn exactly RetryAttempts
// attempts, the segment must come back unrecoverable, and the obs
// counters must reconcile with the retry arithmetic.
func TestDownloadRetryExhaustion(t *testing.T) {
	const retryAttempts = 3
	r := newDirectRig(t, 5)
	seg := make([]byte, 900)
	rand.New(rand.NewSource(20)).Read(seg)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.engine.UploadSegment(context.Background(), plan, "segR",
		coderSource(t, paperCoder(t), seg), nil); err != nil {
		t.Fatal(err)
	}

	// Same stores, but every call now fails transiently; the scaled
	// clock compresses the retry backoff sleeps.
	reg := obs.NewRegistry()
	var broken []cloud.Interface
	for _, st := range r.stores {
		broken = append(broken, cloudsim.NewFlaky(cloudsim.NewDirect(st), 1.0, 99))
	}
	engine := New(broken, sched.NewProber(0), Config{
		RetryAttempts: retryAttempts,
		Clock:         vclock.NewScaled(1000),
		Obs:           reg,
	})

	locations := make(map[int][]string)
	for b, c := range plan.Placement() {
		locations[b] = []string{c}
	}
	dplan, err := sched.NewDownloadPlan(paperParams.K, locations)
	if err != nil {
		t.Fatal(err)
	}
	_, err = engine.DownloadSegment(context.Background(), dplan, "segR")
	if !errors.Is(err, ErrSegmentUnrecoverable) {
		t.Fatalf("err = %v, want ErrSegmentUnrecoverable", err)
	}

	s := reg.Snapshot()
	failed := s.Counter("transfer.down.blocks_failed")
	if failed < int64(paperParams.K) {
		t.Fatalf("blocks_failed = %d, want >= K=%d", failed, paperParams.K)
	}
	if got := s.Counter("transfer.down.blocks"); got != 0 {
		t.Fatalf("blocks succeeded against always-failing clouds: %d", got)
	}
	// Every failed block ran the retry loop to exhaustion, so the
	// retry counter is exactly (attempts-1) per failure.
	if got, want := s.Counter("transfer.down.retries"), failed*(retryAttempts-1); got != want {
		t.Fatalf("retries = %d, want %d (= %d failures x %d extra attempts)",
			got, want, failed, retryAttempts-1)
	}
	// All slots were drained before returning.
	if got := s.Gauge("transfer.active"); got != 0 {
		t.Fatalf("active gauge = %v after batch", got)
	}
}

// TestDeleteBlocksEdges covers placements naming unknown clouds and
// clouds that refuse the delete, and checks the obs accounting.
func TestDeleteBlocksEdges(t *testing.T) {
	r := newDirectRig(t, 3)
	seg := make([]byte, 400)
	rand.New(rand.NewSource(21)).Read(seg)
	params := sched.Params{N: 3, K: 2, Kr: 2, Ks: 2}
	coder, err := erasure.NewCoder(params.K, params.CodeN())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sched.NewUploadPlan(params, r.names)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var clouds []cloud.Interface
	for _, fl := range r.flaky {
		clouds = append(clouds, fl)
	}
	engine := New(clouds, sched.NewProber(0), Config{Obs: reg})
	if err := engine.UploadSegment(context.Background(), plan, "segE",
		coderSource(t, coder, seg), nil); err != nil {
		t.Fatal(err)
	}
	placement := plan.Placement()

	// One cloud goes down (its deletes fail), and the placement gains
	// a phantom entry for a cloud this engine has never heard of.
	r.flaky[1].SetDown(true)
	downName := r.names[1]
	downBlocks := 0
	for _, c := range placement {
		if c == downName {
			downBlocks++
		}
	}
	placement[1000] = "no-such-cloud"

	n := engine.DeleteBlocks(context.Background(), "segE", placement)
	want := len(placement) - 1 - downBlocks // minus phantom, minus down cloud's blocks
	if n != want {
		t.Fatalf("DeleteBlocks = %d, want %d", n, want)
	}

	s := reg.Snapshot()
	if got := s.Counter("transfer.delete.unknown_cloud"); got != 1 {
		t.Fatalf("unknown_cloud = %d", got)
	}
	if got := s.Counter("transfer.delete.blocks"); got != int64(want) {
		t.Fatalf("delete.blocks = %d, want %d", got, want)
	}
	if got := s.Counter("transfer.delete.blocks_failed"); got != int64(downBlocks) {
		t.Fatalf("delete.blocks_failed = %d, want %d", got, downBlocks)
	}

	// Deleting again: the simulated store's Delete is idempotent, so
	// with the cloud back up every entry succeeds, including the ones
	// whose files are already gone.
	r.flaky[1].SetDown(false)
	delete(placement, 1000)
	if n := engine.DeleteBlocks(context.Background(), "segE", placement); n != len(placement) {
		t.Fatalf("second DeleteBlocks = %d, want %d (idempotent deletes)", n, len(placement))
	}
	for _, st := range r.stores {
		if st.FileCount() != 0 {
			t.Fatalf("%s still holds %d files", st.Name(), st.FileCount())
		}
	}
}

// TestUploadBatchObsCounters checks the engine's success-path metrics
// reconcile with the plan outcome.
func TestUploadBatchObsCounters(t *testing.T) {
	r := newDirectRig(t, 5)
	reg := obs.NewRegistry()
	var clouds []cloud.Interface
	for _, fl := range r.flaky {
		clouds = append(clouds, fl)
	}
	engine := New(clouds, sched.NewProber(0), Config{Obs: reg})
	seg := make([]byte, 1200)
	rand.New(rand.NewSource(22)).Read(seg)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.UploadSegment(context.Background(), plan, "segO",
		coderSource(t, paperCoder(t), seg), nil); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	uploaded := int64(len(plan.UploadedBlocks()))
	if got := s.Counter("transfer.up.blocks"); got != uploaded {
		t.Fatalf("up.blocks = %d, plan uploaded %d", got, uploaded)
	}
	if got := s.Counter("transfer.up.blocks_failed"); got != 0 {
		t.Fatalf("up.blocks_failed = %d on healthy clouds", got)
	}
	if got := s.Histograms["transfer.up.block_seconds"].Count; got != uploaded {
		t.Fatalf("block_seconds count = %d, want %d", got, uploaded)
	}
	// No failures means every assignment completed: handouts reconcile
	// exactly with the plan's final block set.
	normal := s.Counter("sched.plan.normal_assigned")
	extra := s.Counter("sched.plan.overprov_assigned")
	if normal != int64(paperParams.NormalBlocks()) {
		t.Fatalf("plan.normal_assigned = %d, want %d", normal, paperParams.NormalBlocks())
	}
	if normal+extra != uploaded {
		t.Fatalf("assigned %d+%d blocks but plan uploaded %d", normal, extra, uploaded)
	}
	if got := s.Counter("transfer.up.overprovisioned"); got != extra {
		t.Fatalf("up.overprovisioned = %d, want %d", got, extra)
	}
	bytes := s.Counter("transfer.up.bytes")
	if bytes <= 0 || bytes%uploaded != 0 {
		t.Fatalf("up.bytes = %d not a multiple of %d equal-sized blocks", bytes, uploaded)
	}
}
