package transfer

import (
	"context"
	"errors"
	"time"

	"unidrive/internal/cloud"
	"unidrive/internal/sched"
	"unidrive/internal/vclock"
)

// Probing wraps a cloud.Interface so that EVERY request — metadata,
// version files, lock flags, blocks — feeds the in-channel bandwidth
// prober. This is the paper's probing scheme taken literally: "uses
// the last transmission as probes", with no dedicated probe traffic.
// Because control-plane traffic touches all clouds early (version
// checks query every cloud), the prober has a ranking before the
// first data block moves, so no full block is ever wasted probing a
// slow cloud.
type Probing struct {
	inner  cloud.Interface
	prober *sched.Prober
	clock  vclock.Clock
}

var _ cloud.Interface = (*Probing)(nil)

// NewProbing wraps inner with transfer observation.
func NewProbing(inner cloud.Interface, prober *sched.Prober, clock vclock.Clock) *Probing {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &Probing{inner: inner, prober: prober, clock: clock}
}

// Name implements cloud.Interface.
func (p *Probing) Name() string { return p.inner.Name() }

func (p *Probing) observe(dir sched.Direction, size int64, start time.Time, err error) {
	switch {
	case err == nil:
		p.prober.Observe(p.inner.Name(), dir, size, p.clock.Now().Sub(start))
	case errors.Is(err, cloud.ErrTransient) || errors.Is(err, cloud.ErrUnavailable):
		// Only network-class failures say something about the cloud;
		// a NotFound is a perfectly healthy response.
		p.prober.ObserveFailure(p.inner.Name(), dir)
	}
}

// Upload implements cloud.Interface.
func (p *Probing) Upload(ctx context.Context, path string, data []byte) error {
	start := p.clock.Now()
	err := p.inner.Upload(ctx, path, data)
	p.observe(sched.Up, int64(len(data)), start, err)
	return err
}

// Download implements cloud.Interface.
func (p *Probing) Download(ctx context.Context, path string) ([]byte, error) {
	start := p.clock.Now()
	data, err := p.inner.Download(ctx, path)
	p.observe(sched.Down, int64(len(data)), start, err)
	return data, err
}

// CreateDir implements cloud.Interface.
func (p *Probing) CreateDir(ctx context.Context, path string) error {
	return p.inner.CreateDir(ctx, path)
}

// List implements cloud.Interface.
func (p *Probing) List(ctx context.Context, path string) ([]cloud.Entry, error) {
	start := p.clock.Now()
	entries, err := p.inner.List(ctx, path)
	p.observe(sched.Down, int64(len(entries))*64, start, err)
	return entries, err
}

// Delete implements cloud.Interface.
func (p *Probing) Delete(ctx context.Context, path string) error {
	return p.inner.Delete(ctx, path)
}
