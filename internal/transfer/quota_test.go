package transfer

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"unidrive/internal/capacity"
	"unidrive/internal/cloud"
	"unidrive/internal/obs"
	"unidrive/internal/sched"
	"unidrive/internal/vclock"
)

// TestUploadQuotaReplansNotRetries is the engine half of the quota
// decision table: a cloud answering ErrQuotaExceeded is a PLACEMENT
// failure — its blocks re-plan onto clouds with space, the cloud is
// never marked dead, and no retry is burned on it.
func TestUploadQuotaReplansNotRetries(t *testing.T) {
	r := newDirectRig(t, 5)
	reg := obs.NewRegistry()
	r.engine = New(enginesClouds(r), sched.NewProber(0), Config{Obs: reg})
	r.flaky[1].SetQuotaFull(true)

	seg := make([]byte, 3000)
	rand.New(rand.NewSource(21)).Read(seg)
	coder := paperCoder(t)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.engine.UploadSegment(context.Background(), plan, "segQ",
		coderSource(t, coder, seg), nil); err != nil {
		t.Fatal(err)
	}
	if !plan.Available() || !plan.Reliable() {
		t.Fatalf("plan state: available=%v reliable=%v", plan.Available(), plan.Reliable())
	}
	for b, c := range plan.Placement() {
		if c == "c1" {
			t.Fatalf("block %d placed on quota-full c1", b)
		}
	}
	if got := reg.Counter("transfer.clouds_marked_full").Value(); got != 1 {
		t.Fatalf("clouds_marked_full = %d, want 1", got)
	}
	// Quota is not a health verdict: the cloud is full, not dead.
	if got := reg.Counter("transfer.clouds_marked_dead").Value(); got != 0 {
		t.Fatalf("clouds_marked_dead = %d, want 0", got)
	}
	if got := reg.Counter("transfer.up.quota_rejected_blocks").Value(); got < 1 {
		t.Fatalf("quota_rejected_blocks = %d, want >= 1", got)
	}
	// cloud.Retry bails on ErrQuotaExceeded after one attempt: no
	// retries are ever burned against a full cloud.
	if got := reg.Counter("transfer.up.retries").Value(); got != 0 {
		t.Fatalf("up.retries = %d, want 0 (quota must not be retried)", got)
	}
}

// TestUploadCapacityGateRoutesAroundFullCloud checks dispatch-time
// gating: when the shared capacity tracker already knows a cloud is
// Full, the engine never even attempts an upload to it.
func TestUploadCapacityGateRoutesAroundFullCloud(t *testing.T) {
	r := newDirectRig(t, 5)
	reg := obs.NewRegistry()
	tr := capacity.NewTracker(capacity.Config{Clock: vclock.NewManual(time.Unix(0, 0))})
	tr.ObserveQuotaExceeded("c1")
	r.engine = New(enginesClouds(r), sched.NewProber(0), Config{Obs: reg, Capacity: tr})

	seg := make([]byte, 3000)
	rand.New(rand.NewSource(22)).Read(seg)
	coder := paperCoder(t)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.engine.UploadSegment(context.Background(), plan, "segQ",
		coderSource(t, coder, seg), nil); err != nil {
		t.Fatal(err)
	}
	if !plan.Available() || !plan.Reliable() {
		t.Fatalf("plan state: available=%v reliable=%v", plan.Available(), plan.Reliable())
	}
	// Not one byte reached c1: the gate fires before dispatch, so the
	// full cloud sees zero upload attempts (and zero rejections).
	entries, err := r.flaky[1].List(context.Background(), DefaultBlockDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("c1 holds %d blocks; the capacity gate let uploads through", len(entries))
	}
	if got := reg.Counter("transfer.up.quota_routed").Value(); got < 1 {
		t.Fatalf("quota_routed = %d, want >= 1", got)
	}
	if got := reg.Counter("transfer.clouds_marked_full").Value(); got != 1 {
		t.Fatalf("clouds_marked_full = %d, want 1", got)
	}
}

// TestUploadAllCloudsQuotaFull: with every cloud full the batch must
// terminate promptly with the plan short of availability — the loud
// < K failure is the caller's (core's) to raise.
func TestUploadAllCloudsQuotaFull(t *testing.T) {
	r := newDirectRig(t, 5)
	reg := obs.NewRegistry()
	r.engine = New(enginesClouds(r), sched.NewProber(0), Config{Obs: reg})
	for _, f := range r.flaky {
		f.SetQuotaFull(true)
	}
	seg := make([]byte, 1500)
	rand.New(rand.NewSource(23)).Read(seg)
	coder := paperCoder(t)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.engine.UploadSegment(context.Background(), plan, "segQ",
		coderSource(t, coder, seg), nil); err != nil {
		t.Fatal(err)
	}
	if plan.Available() {
		t.Fatal("plan available with every cloud quota-full")
	}
	if got := len(plan.Placement()); got != 0 {
		t.Fatalf("placed %d blocks with every cloud full", got)
	}
	if got := reg.Counter("transfer.clouds_marked_full").Value(); got != 5 {
		t.Fatalf("clouds_marked_full = %d, want 5", got)
	}
}

// TestDownloadServedByCapacityFullClouds: a quota-full cloud is not a
// dead cloud — downloads never consult the capacity tracker, so a
// segment whose every holder is Full still reads back byte-identical.
func TestDownloadServedByCapacityFullClouds(t *testing.T) {
	r := newDirectRig(t, 5)
	seg := make([]byte, 5000)
	rand.New(rand.NewSource(24)).Read(seg)
	coder := paperCoder(t)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.engine.UploadSegment(context.Background(), plan, "segQ",
		coderSource(t, coder, seg), nil); err != nil {
		t.Fatal(err)
	}

	// Every cloud is now Full in the tracker AND rejects new uploads.
	tr := capacity.NewTracker(capacity.Config{Clock: vclock.NewManual(time.Unix(0, 0))})
	for _, n := range r.names {
		tr.ObserveQuotaExceeded(n)
	}
	for _, f := range r.flaky {
		f.SetQuotaFull(true)
	}
	engine := New(enginesClouds(r), sched.NewProber(0), Config{Capacity: tr})

	locations := make(map[int][]string)
	for b, c := range plan.Placement() {
		locations[b] = []string{c}
	}
	dplan, err := sched.NewDownloadPlan(paperParams.K, locations)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := engine.DownloadSegment(context.Background(), dplan, "segQ")
	if err != nil {
		t.Fatal(err)
	}
	got, err := coder.Decode(blocks, len(seg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, seg) {
		t.Fatal("decoded segment differs from original")
	}
}

// enginesClouds rebuilds the rig's cloud.Interface slice so tests can
// construct engines with non-default configs over the same stores.
func enginesClouds(r *directRig) []cloud.Interface {
	clouds := make([]cloud.Interface, len(r.flaky))
	for i, f := range r.flaky {
		clouds[i] = f
	}
	return clouds
}
