// Package transfer is UniDrive's data-plane engine: it executes
// upload and download plans over the clouds with multiple concurrent
// connections per cloud, feeds completed transfers into the
// in-channel bandwidth prober, retries transient Web API failures,
// and excludes clouds that stop responding.
//
// The engine is a central dispatcher (paper §7: "priority queuing ...
// multi-threaded file transfer to each cloud"): whenever a connection
// slot is idle it asks the plan for that cloud's next block —
// visiting clouds fastest-first per the prober — launches the
// transfer, and processes completions as they arrive. Dynamic
// decisions (over-provisioning, fastest-cloud download) therefore
// happen block by block on live throughput information.
package transfer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"unidrive/internal/capacity"
	"unidrive/internal/cloud"
	"unidrive/internal/health"
	"unidrive/internal/meta"
	"unidrive/internal/obs"
	"unidrive/internal/sched"
	"unidrive/internal/vclock"
)

// DefaultBlockDir is where coded blocks live on every cloud.
const DefaultBlockDir = ".unidrive/blocks"

// DefaultConnsPerCloud matches the paper's evaluation setup ("we use
// up to 5 connections to each cloud").
const DefaultConnsPerCloud = 5

// Config parametrizes an Engine.
type Config struct {
	// ConnsPerCloud is the maximum concurrent transfers per cloud.
	ConnsPerCloud int
	// BlockDir is the cloud directory for coded blocks.
	BlockDir string
	// RetryAttempts is how many times a single block transfer is
	// tried against one cloud before counting as a failure.
	RetryAttempts int
	// DeadAfter is the number of consecutive failed block transfers
	// after which a cloud is excluded from the current plan.
	DeadAfter int
	// SpeedCutoff excludes a cloud from download dispatch while its
	// probed per-connection throughput is more than this factor below
	// the fastest cloud that still has work: handing a block to a
	// far slower cloud pins that block (the per-segment budget is k)
	// until the slow cloud delivers, which is exactly what the
	// paper's fastest-clouds-first download rule avoids. Unprobed
	// clouds are always eligible. Default 4.
	SpeedCutoff float64
	// Clock paces retry backoff; defaults to the real clock.
	Clock vclock.Clock
	// Obs receives the engine's metrics (per-block retries, straggler
	// drains, occupancy, goodput). nil disables recording.
	Obs *obs.Registry
	// Health, when non-nil, gates dispatch on the per-cloud circuit
	// breakers: clouds whose breaker is open receive no new blocks —
	// uploads fail over their queued blocks to healthy clouds, and
	// downloads treat them as dead for the batch.
	Health *health.Tracker
	// Capacity, when non-nil, gates UPLOAD dispatch on per-cloud quota
	// state: clouds the tracker reports Full receive no new blocks
	// (their queued blocks re-plan onto clouds with space, within the
	// placement bound), and an ErrQuotaExceeded result is classified
	// as a placement failure — re-plan, never retry, never breaker
	// evidence. Downloads are unaffected: a full cloud still serves
	// every read. nil disables capacity gating.
	Capacity *capacity.Tracker
	// HedgeQuantile is the latency quantile of the observed download
	// block histogram past which an in-flight download counts as a
	// straggler and earns a duplicate (hedged) request on a spare
	// cloud. Default 0.95.
	HedgeQuantile float64
	// HedgeMinSamples is the minimum histogram population before the
	// quantile deadline is trusted; below it HedgeFallbackDelay is
	// used. Default 8.
	HedgeMinSamples int
	// HedgeFallbackDelay is the straggler deadline used while the
	// latency histogram has too few samples (or Obs is nil). Default
	// 30s, far above any healthy block time, so hedging effectively
	// waits for real latency data unless a cloud is truly stuck.
	HedgeFallbackDelay time.Duration
	// Fair, when non-nil, is a weighted-fair connection scheduler
	// shared by every engine in the process (one engine per tenant):
	// each launched transfer additionally claims a (cloud, Tenant)
	// slot from it, so the process-wide per-cloud connection budget is
	// enforced once and one tenant saturating a cloud cannot starve
	// the rest. nil preserves the single-tenant behaviour exactly.
	Fair *FairScheduler
	// Tenant names this engine's owner to the shared scheduler (the
	// daemon uses the tenant ID). Only meaningful with Fair set.
	Tenant string
}

func (c *Config) fillDefaults() {
	if c.ConnsPerCloud <= 0 {
		c.ConnsPerCloud = DefaultConnsPerCloud
	}
	if c.BlockDir == "" {
		c.BlockDir = DefaultBlockDir
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 3
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3
	}
	if c.SpeedCutoff <= 0 {
		c.SpeedCutoff = 4
	}
	if c.Clock == nil {
		c.Clock = vclock.Real{}
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMinSamples <= 0 {
		c.HedgeMinSamples = 8
	}
	if c.HedgeFallbackDelay <= 0 {
		c.HedgeFallbackDelay = 30 * time.Second
	}
}

// Engine executes plans over a fixed set of clouds. Safe for
// concurrent use by independent plan runs.
type Engine struct {
	clouds map[string]cloud.Interface
	names  []string
	prober *sched.Prober
	cfg    Config
}

// New creates an engine over the given clouds. prober may be shared
// with other engines on the same device (it should be: probing
// history is per device, not per file).
func New(clouds []cloud.Interface, prober *sched.Prober, cfg Config) *Engine {
	if len(clouds) == 0 {
		panic("transfer: no clouds")
	}
	if prober == nil {
		panic("transfer: nil prober")
	}
	cfg.fillDefaults()
	m := make(map[string]cloud.Interface, len(clouds))
	names := make([]string, 0, len(clouds))
	for _, c := range clouds {
		m[c.Name()] = c
		names = append(names, c.Name())
	}
	sort.Strings(names)
	return &Engine{clouds: m, names: names, prober: prober, cfg: cfg}
}

// Prober returns the engine's prober.
func (e *Engine) Prober() *sched.Prober { return e.prober }

// BlockDir returns the cloud directory used for coded blocks.
func (e *Engine) BlockDir() string { return e.cfg.BlockDir }

// BlockPath returns the cloud path of one coded block.
func (e *Engine) BlockPath(segID string, blockID int) string {
	return cloud.JoinPath(e.cfg.BlockDir, meta.BlockName(segID, blockID))
}

// BlockSource supplies block content by erasure-code index; the core
// layer backs it with pre-encoded normal blocks and on-demand
// generation of over-provisioned parity blocks.
//
// Buffer ownership: the returned slice stays owned by the source; the
// engine only reads it between the call and the completion of the
// block's upload. Since UploadSegment/UploadBatch drain all in-flight
// uploads before returning, the source may recycle every buffer it
// handed out as soon as the batch call returns. The same blockID may
// be requested more than once (retries on other clouds) and must
// yield identical content each time.
type BlockSource func(blockID int) ([]byte, error)

// result is one finished transfer reported back to the dispatcher.
type result struct {
	item      int
	cloudName string
	blockID   int
	data      []byte
	size      int64
	dur       time.Duration
	attempts  int
	err       error
}

// dispatcher tracks idle connection slots, consecutive failures, and
// which clouds this batch has written off.
type dispatcher struct {
	e      *Engine
	idle   map[string]int
	streak map[string]int
	dead   map[string]bool
	// full marks clouds written off for UPLOADS this batch because
	// their quota is exhausted; unlike dead they still serve download
	// batches (and everything else) normally.
	full    map[string]bool
	active  int
	results chan result
	// fairDenied records that the last dispatch pass was refused a
	// slot by the shared scheduler; with nothing in flight the batch
	// then blocks on FairScheduler.Changed instead of spinning (or,
	// worse, returning with work left).
	fairDenied bool
}

func (e *Engine) newDispatcher() *dispatcher {
	d := &dispatcher{
		e:       e,
		idle:    make(map[string]int, len(e.names)),
		streak:  make(map[string]int, len(e.names)),
		dead:    make(map[string]bool, len(e.names)),
		full:    make(map[string]bool, len(e.names)),
		results: make(chan result),
	}
	for _, n := range e.names {
		d.idle[n] = e.cfg.ConnsPerCloud
	}
	return d
}

// take claims an idle connection slot on cloudName and publishes the
// new occupancy.
func (d *dispatcher) take(cloudName string) {
	d.idle[cloudName]--
	d.active++
	reg := d.e.cfg.Obs
	reg.Gauge("transfer.occupancy." + cloudName).Set(float64(d.e.cfg.ConnsPerCloud - d.idle[cloudName]))
	reg.Gauge("transfer.active").Set(float64(d.active))
}

// release returns a connection slot (local and shared) and publishes
// the new occupancy. Every in-flight transfer holds exactly one
// shared-scheduler slot, claimed by dispatch or the hedge path before
// launch.
func (d *dispatcher) release(cloudName string) {
	d.idle[cloudName]++
	d.active--
	d.releaseFair(cloudName)
	reg := d.e.cfg.Obs
	reg.Gauge("transfer.occupancy." + cloudName).Set(float64(d.e.cfg.ConnsPerCloud - d.idle[cloudName]))
	reg.Gauge("transfer.active").Set(float64(d.active))
}

// acquireFair claims a shared-scheduler slot for the cloud, or
// records the refusal. Always true without a shared scheduler.
func (d *dispatcher) acquireFair(cloudName string) bool {
	f := d.e.cfg.Fair
	if f == nil {
		return true
	}
	if f.Acquire(cloudName, d.e.cfg.Tenant) {
		return true
	}
	d.fairDenied = true
	d.e.cfg.Obs.Counter("transfer.fair.denied").Inc()
	return false
}

// releaseFair returns a shared-scheduler slot, if one is in use.
func (d *dispatcher) releaseFair(cloudName string) {
	if f := d.e.cfg.Fair; f != nil {
		f.Release(cloudName, d.e.cfg.Tenant)
	}
}

// awaitFair blocks until the shared scheduler's state changes (or ctx
// ends) after a refused dispatch with nothing in flight. It returns
// true when the caller should re-dispatch. The Changed generation is
// captured before one more dispatch attempt by the caller pattern in
// Upload/DownloadBatch, so wakeups cannot be lost.
func (e *Engine) awaitFair(ctx context.Context, ch <-chan struct{}) bool {
	e.cfg.Obs.Counter("transfer.fair.waits").Inc()
	select {
	case <-ch:
		return true
	case <-ctx.Done():
		return false
	}
}

// retryPolicy builds the per-block retry policy using the engine's
// clock for backoff. Backoff waits go through Clock.After so a hedge
// winner's cancellation interrupts a loser stuck mid-backoff.
func (e *Engine) retryPolicy() cloud.RetryPolicy {
	p := cloud.DefaultRetryPolicy(nil)
	p.After = e.cfg.Clock.After
	p.MaxAttempts = e.cfg.RetryAttempts
	return p
}

// admits reports whether the health tracker (if any) currently admits
// traffic to the cloud.
func (e *Engine) admits(name string) bool {
	return e.cfg.Health == nil || e.cfg.Health.Admits(name)
}

// admitsUploads reports whether the capacity tracker (if any)
// currently admits NEW upload work to the cloud. Downloads never
// consult it. (A nil *capacity.Tracker admits everything.)
func (e *Engine) admitsUploads(name string) bool {
	return e.cfg.Capacity.Admits(name)
}

// markOutcome updates failure streaks; it returns true when the cloud
// should be excluded from the plan. A circuit-breaker rejection means
// the health layer already judged the cloud down — exclude it without
// burning a failure streak on it.
func (d *dispatcher) markOutcome(cloudName string, err error) (dead bool) {
	if err == nil {
		d.streak[cloudName] = 0
		return false
	}
	if errors.Is(err, cloud.ErrUnavailable) || errors.Is(err, cloud.ErrCircuitOpen) {
		return true
	}
	d.streak[cloudName]++
	return d.streak[cloudName] >= d.e.cfg.DeadAfter
}

// UploadItem is one segment's upload work in a batch.
type UploadItem struct {
	// Plan is the segment's scheduling state machine.
	Plan *sched.UploadPlan
	// SegID names the segment (block files are "<SegID>.<n>").
	SegID string
	// Src supplies block content by erasure-code index.
	Src BlockSource
}

// UploadSegment runs a single upload plan until the stop condition
// holds (nil means: until the plan has no more work anywhere).
// Individual cloud failures are handled inside the plan.
func (e *Engine) UploadSegment(ctx context.Context, plan *sched.UploadPlan, segID string,
	src BlockSource, stop func() bool) error {
	_, err := e.UploadBatch(ctx, []UploadItem{{Plan: plan, SegID: segID, Src: src}}, stop)
	return err
}

// UploadBatch runs several segments' upload plans through one
// dispatcher, realizing the paper's availability-first pipeline:
// whenever a connection to a cloud is idle, the FIRST item in batch
// order with work for that cloud gets it — so early files' remaining
// blocks on slow clouds drain in the background while fast clouds
// already push later files.
//
// Dispatching stops when stop() turns true (or every plan runs dry);
// blocks already in flight are drained before returning. The returned
// time is the moment the stop condition was first observed — the
// batch's availability instant when stop tests all-plans-available —
// which precedes the drain.
func (e *Engine) UploadBatch(ctx context.Context, items []UploadItem, stop func() bool) (time.Time, error) {
	d := e.newDispatcher()
	for _, it := range items {
		it.Plan.SetObs(e.cfg.Obs)
	}
	batchStart := e.cfg.Clock.Now()
	var bytesOK int64
	stopped := false
	stopAt := e.cfg.Clock.Now()
	checkStop := func() bool {
		if stopped {
			return true
		}
		if stop != nil && stop() {
			stopped = true
			stopAt = e.cfg.Clock.Now()
		}
		return stopped
	}
	reg := e.cfg.Obs
	// pending[cloud] queues the indices of items that may still have
	// blocks for that cloud. Dispatch serves the front entry and pops
	// entries whose plan ran dry for the cloud; anything that re-routes
	// blocks (a failed block, a failover) re-appends the affected items.
	// Duplicates are harmless — an exhausted entry just pops. This keeps
	// finding the next block O(1) amortized instead of rescanning the
	// whole batch per landed block, which is the difference between
	// O(blocks) and O(blocks × items) for a 50k-segment commit.
	pending := make(map[string][]int, len(e.names))
	for _, name := range e.names {
		q := make([]int, len(items))
		for i := range q {
			q[i] = i
		}
		pending[name] = q
	}
	requeueItem := func(item int) {
		for _, name := range e.names {
			if !d.dead[name] && !d.full[name] {
				pending[name] = append(pending[name], item)
			}
		}
	}
	// liveTargets lists the clouds still eligible for re-planned
	// upload work, ranked healthiest-first and with quota-full clouds
	// filtered out (Probing ones last — a probe is a last resort).
	liveTargets := func(except string) []string {
		live := make([]string, 0, len(e.names))
		for _, n := range e.names {
			if n != except && !d.dead[n] && !d.full[n] && e.admits(n) {
				live = append(live, n)
			}
		}
		if e.cfg.Health != nil {
			live = e.cfg.Health.Healthiest(live)
		}
		return e.cfg.Capacity.WithSpace(live)
	}
	// requeueOn makes every item findable again on the given clouds'
	// queues after blocks were re-planned onto them.
	requeueOn := func(targets []string) {
		for _, n := range targets {
			q := pending[n]
			for i := range items {
				q = append(q, i)
			}
			pending[n] = q
		}
	}
	// failover is the mid-transfer failover path: the cloud is written
	// off for this batch and each plan's still-queued normal blocks
	// are re-planned onto the healthiest live clouds, within the
	// per-cloud placement bound (paper §4.2).
	failover := func(name string) {
		if d.dead[name] {
			return
		}
		d.dead[name] = true
		ranked := liveTargets(name)
		moved := 0
		for _, it := range items {
			moved += it.Plan.MarkDeadAndReassign(name, ranked)
		}
		if moved > 0 {
			reg.Counter("transfer.up.failover_blocks").Add(int64(moved))
			// The moved blocks landed on live clouds' queues; their
			// items must be findable there again.
			requeueOn(ranked)
		}
	}
	// markFull is the quota-exhaustion analogue of failover: the cloud
	// stops receiving new upload work for this batch and each plan's
	// still-queued normal blocks re-plan onto clouds with space —
	// but the cloud is NOT dead: concurrent download batches, lists
	// and lock traffic keep using it.
	markFull := func(name string) {
		if d.full[name] || d.dead[name] {
			return
		}
		d.full[name] = true
		reg.Counter("transfer.clouds_marked_full").Inc()
		ranked := liveTargets(name)
		moved := 0
		for _, it := range items {
			moved += it.Plan.MarkFullAndReassign(name, ranked)
		}
		if moved > 0 {
			reg.Counter("transfer.up.quota_blocks").Add(int64(moved))
			requeueOn(ranked)
		}
	}
	dispatch := func() {
		if checkStop() {
			return
		}
		// Fastest clouds get first pick of the work (and of the
		// over-provisioned extras).
		for _, name := range e.prober.Rank(e.names, sched.Up) {
			if d.dead[name] || d.full[name] {
				continue
			}
			if !e.admits(name) {
				// Open breaker: route this cloud's blocks elsewhere
				// instead of queuing work it would only reject.
				reg.Counter("transfer.up.breaker_routed").Inc()
				failover(name)
				continue
			}
			if !e.admitsUploads(name) {
				// The capacity tracker already knows this cloud is full
				// (an earlier batch, or another subsystem, hit its
				// quota): route its blocks to clouds with space instead
				// of queuing uploads it would only reject.
				reg.Counter("transfer.up.quota_routed").Inc()
				markFull(name)
				continue
			}
			for d.idle[name] > 0 {
				if checkStop() {
					return
				}
				if len(pending[name]) == 0 {
					break
				}
				// The shared slot is claimed BEFORE NextBlock: NextBlock
				// assigns the block to this cloud, and a refusal after
				// the fact would leave it assigned with no transfer.
				if !d.acquireFair(name) {
					break
				}
				q := pending[name]
				dispatched := false
				for len(q) > 0 {
					i := q[0]
					blockID, ok := items[i].Plan.NextBlock(name)
					if !ok {
						q = q[1:]
						continue
					}
					d.take(name)
					go e.uploadBlock(ctx, d.results, i, name, items[i].SegID, blockID, items[i].Src)
					dispatched = true
					break
				}
				pending[name] = q
				if !dispatched {
					d.releaseFair(name)
					break
				}
			}
		}
	}

	if f := e.cfg.Fair; f != nil {
		defer f.EndBatch(e.cfg.Tenant)
	}
	dispatch()
	for {
		if d.active == 0 {
			if stopped || ctx.Err() != nil || !d.fairDenied {
				break
			}
			// Work remains but every slot belongs to other tenants.
			// Capture the change generation, retry once (a slot may
			// have freed since the refusal), then sleep on it.
			ch := e.cfg.Fair.Changed()
			d.fairDenied = false
			dispatch()
			if d.active > 0 || !d.fairDenied {
				continue
			}
			if !e.awaitFair(ctx, ch) {
				break
			}
			d.fairDenied = false
			dispatch()
			continue
		}
		r := <-d.results
		d.release(r.cloudName)
		reg.Counter("transfer.up.retries").Add(int64(r.attempts - 1))
		if stopped {
			// The stop condition already held when this block landed:
			// it was a straggler drained for reliability, not for the
			// availability instant.
			reg.Counter("transfer.up.stragglers").Inc()
		}
		plan := items[r.item].Plan
		if r.err != nil {
			reg.Counter("transfer.up.blocks_failed").Inc()
			if errors.Is(r.err, cloud.ErrQuotaExceeded) {
				// Quota exhaustion is a PLACEMENT failure, not a health
				// failure: the provider answered promptly and correctly —
				// it is merely out of space. Re-plan the cloud's blocks
				// elsewhere; no retry (cloud.Retry already bailed), no
				// dead streak, no breaker evidence, no prober penalty.
				reg.Counter("transfer.up.quota_rejected_blocks").Inc()
				markFull(r.cloudName)
				if d.full[r.cloudName] {
					// Fail below reroutes this in-flight block onto a
					// cloud with space — a quota move too.
					reg.Counter("transfer.up.quota_blocks").Inc()
				}
				plan.Fail(r.cloudName, r.blockID)
				requeueItem(r.item)
			} else {
				if d.markOutcome(r.cloudName, r.err) {
					// Write the cloud off first so Fail reroutes the failed
					// block to a live cloud instead of requeueing it on the
					// dead one.
					reg.Counter("transfer.clouds_marked_dead").Inc()
					failover(r.cloudName)
				}
				if d.dead[r.cloudName] {
					// Fail on a dead cloud reroutes the in-flight block onto
					// a live queue — that is a failover move too.
					reg.Counter("transfer.up.failover_blocks").Inc()
				}
				plan.Fail(r.cloudName, r.blockID)
				// Fail re-routes the block onto some live cloud's queue;
				// make the item findable there again.
				requeueItem(r.item)
				e.prober.ObserveFailure(r.cloudName, sched.Up)
			}
		} else {
			reg.Counter("transfer.up.blocks").Inc()
			reg.Counter("transfer.up.bytes").Add(r.size)
			reg.Histogram("transfer.up.block_seconds").ObserveDuration(r.dur)
			if r.blockID >= plan.Params().NormalBlocks() {
				reg.Counter("transfer.up.overprovisioned").Inc()
			}
			bytesOK += r.size
			plan.Complete(r.cloudName, r.blockID)
			// A landed block can unlock work that NextBlock refused
			// earlier — the uploader's own fair share completing opens
			// its over-provisioning budget, and any completion can free
			// the spare slots held back for orphaned blocks. Make the
			// item findable on every live queue again.
			requeueItem(r.item)
			e.prober.Observe(r.cloudName, sched.Up, r.size, r.dur)
			d.markOutcome(r.cloudName, nil)
		}
		if ctx.Err() != nil {
			// Stop dispatching; drain what is in flight.
			continue
		}
		dispatch()
	}
	if !stopped {
		stopAt = e.cfg.Clock.Now()
	}
	if secs := e.cfg.Clock.Now().Sub(batchStart).Seconds(); secs > 0 && bytesOK > 0 {
		// Goodput: successfully transferred payload over the whole
		// batch's wall time, the number the paper's Figure 9 plots.
		reg.Gauge("transfer.up.goodput_bps").Set(float64(bytesOK) / secs)
	}
	return stopAt, ctx.Err()
}

func (e *Engine) uploadBlock(ctx context.Context, results chan<- result, item int,
	cloudName, segID string, blockID int, src BlockSource) {

	data, err := src(blockID)
	if err != nil {
		results <- result{item: item, cloudName: cloudName, blockID: blockID,
			err: fmt.Errorf("transfer: block source: %w", err)}
		return
	}
	c := e.clouds[cloudName]
	path := e.BlockPath(segID, blockID)
	start := e.cfg.Clock.Now()
	attempts := 0
	err = cloud.Retry(ctx, e.retryPolicy(), func() error {
		attempts++
		return c.Upload(ctx, path, data)
	})
	results <- result{
		item:      item,
		cloudName: cloudName,
		blockID:   blockID,
		size:      int64(len(data)),
		dur:       e.cfg.Clock.Now().Sub(start),
		attempts:  attempts,
		err:       err,
	}
}

// ErrSegmentUnrecoverable reports that fewer than K blocks of a
// segment are reachable.
var ErrSegmentUnrecoverable = errors.New("transfer: segment unrecoverable with reachable clouds")

// DownloadItem is one segment's download work in a batch.
type DownloadItem struct {
	// Plan is the segment's retrieval state machine.
	Plan *sched.DownloadPlan
	// SegID names the segment.
	SegID string
	// Done, when non-nil, is invoked once from the dispatcher as soon
	// as this item's plan completes, with the item's fetched blocks —
	// before the rest of the batch finishes. Callers use it to
	// assemble and deliver early files while later files still
	// transfer (the paper's per-file completion). It must return
	// quickly: it runs on the dispatcher goroutine.
	//
	// Serialization contract: every Done callback of a batch runs on
	// the single goroutine that called DownloadBatch, strictly one at
	// a time, and the last one returns before DownloadBatch does.
	// Callers may therefore mutate shared un-synchronized state
	// (accumulators, error maps) from Done without locking — the core
	// apply path depends on this.
	Done func(blocks map[int][]byte)
	// Sums carries the expected content checksum (meta.BlockSum) per
	// block ID. A fetched block whose content does not match is
	// treated as a failed transfer — counted under
	// transfer.down.corrupt_blocks, reported to the health tracker,
	// and re-planned onto another holder — instead of being handed to
	// the caller. Blocks absent from the map (or mapped to 0) are
	// pre-checksum metadata and pass unverified; the decode-time
	// segment SHA check is their safety net.
	Sums map[int]uint32
}

// DownloadSegment runs a single download plan to completion and
// returns the fetched blocks (block ID -> content). It fails with
// ErrSegmentUnrecoverable when fewer than K blocks remain reachable.
func (e *Engine) DownloadSegment(ctx context.Context, plan *sched.DownloadPlan, segID string) (map[int][]byte, error) {
	res, err := e.DownloadBatch(ctx, []DownloadItem{{Plan: plan, SegID: segID}})
	if err != nil {
		return nil, err
	}
	if !plan.Done() {
		return nil, fmt.Errorf("%w: got %d blocks", ErrSegmentUnrecoverable, len(res[0]))
	}
	return res[0], nil
}

// DownloadBatch runs several segments' download plans through one
// dispatcher — idle connections of the fastest clouds always serve
// the earliest unfinished segment — and returns each item's fetched
// blocks, indexed like items. Individual segments may come back
// incomplete (fewer than K blocks) when too many clouds failed; the
// caller checks each plan's Done.
//
// The fetched block buffers are exclusively the caller's
// (cloud.Interface.Download allocates fresh memory), so the decode
// path is free to recycle them into the erasure buffer pool.
func (e *Engine) DownloadBatch(ctx context.Context, items []DownloadItem) ([]map[int][]byte, error) {
	blocks := make([]map[int][]byte, len(items))
	for i := range blocks {
		blocks[i] = make(map[int][]byte)
	}
	d := e.newDispatcher()
	reg := e.cfg.Obs

	// flights tracks every (item, block) currently being fetched —
	// possibly by two clouds at once when hedged. Each attempt gets
	// its own cancelable context so first-response-wins can cancel
	// the loser.
	type flightKey struct{ item, blockID int }
	type flight struct {
		start   time.Time
		primary string
		// attempts maps each fetching cloud to its cancel func.
		attempts map[string]context.CancelFunc
		// hedged records that hedging was decided (at most once per
		// flight, even when no spare was available); dup records that a
		// duplicate request actually went out — only those flights count
		// toward the win/loss tally.
		hedged bool
		dup    bool
		done   bool
	}
	flights := make(map[flightKey]*flight)

	launch := func(item int, name string, blockID int) {
		actx, cancel := context.WithCancel(ctx)
		key := flightKey{item, blockID}
		f := flights[key]
		if f == nil {
			f = &flight{start: e.cfg.Clock.Now(), primary: name,
				attempts: make(map[string]context.CancelFunc, 2)}
			flights[key] = f
		}
		f.attempts[name] = cancel
		d.take(name)
		go e.downloadBlock(actx, d.results, item, name, items[item].SegID, blockID)
	}

	// pending[cloud] queues the indices of items that may still have
	// blocks for that cloud — same amortization as the upload batch:
	// dispatch pops entries whose plan ran dry for the cloud, and
	// whatever re-routes blocks re-appends the affected items
	// (duplicates pop harmlessly). Without it every landed block
	// rescans the whole batch, O(blocks × items) for large applies.
	pending := make(map[string][]int, len(e.names))
	for _, name := range e.names {
		q := make([]int, len(items))
		for i := range q {
			q[i] = i
		}
		pending[name] = q
	}
	requeueItem := func(item int) {
		for _, name := range e.names {
			if !d.dead[name] {
				pending[name] = append(pending[name], item)
			}
		}
	}

	// markDeadForBatch writes a cloud off for every plan in the batch.
	markDeadForBatch := func(name string) {
		if d.dead[name] {
			return
		}
		d.dead[name] = true
		for _, it := range items {
			it.Plan.MarkDead(name)
		}
		// MarkDead re-routed the dead cloud's blocks onto the other
		// holders' queues; their items must be findable there again.
		for _, n := range e.names {
			if d.dead[n] {
				continue
			}
			q := pending[n]
			for i := range items {
				q = append(q, i)
			}
			pending[n] = q
		}
	}

	dispatch := func() {
		ranked := e.prober.Rank(e.names, sched.Down)
		// The fastest cloud that can still contribute sets the speed
		// bar: a cloud SpeedCutoff× slower is skipped — its blocks
		// wait for a fast connection instead of pinning the
		// per-segment budget on a straw. Only clouds that actually
		// hold needed blocks raise the bar, so blocks living solely
		// on slow clouds are never starved. Answered from the pending
		// queue (compacting spent entries as a side effect), not by
		// scanning every plan.
		hasWork := func(name string) bool {
			q := pending[name]
			for len(q) > 0 && !items[q[0]].Plan.HasWork(name) {
				q = q[1:]
			}
			pending[name] = q
			return len(q) > 0
		}
		var fastest float64
		for _, name := range ranked {
			if !hasWork(name) {
				continue
			}
			if tp := e.prober.Throughput(name, sched.Down); tp > fastest {
				fastest = tp
			}
		}
		for _, name := range ranked {
			if d.dead[name] {
				continue
			}
			if !e.admits(name) {
				// Open breaker: treat like an outage for this batch so
				// the plans reroute its blocks to other holders.
				reg.Counter("transfer.down.breaker_routed").Inc()
				markDeadForBatch(name)
				continue
			}
			tp := e.prober.Throughput(name, sched.Down)
			if e.prober.Samples(name, sched.Down) > 0 && tp*e.cfg.SpeedCutoff < fastest {
				continue
			}
			for d.idle[name] > 0 {
				if len(pending[name]) == 0 {
					break
				}
				// Shared slot before NextBlock, as in the upload path.
				if !d.acquireFair(name) {
					break
				}
				q := pending[name]
				dispatched := false
				for len(q) > 0 {
					i := q[0]
					blockID, ok := items[i].Plan.NextBlock(name)
					if !ok {
						q = q[1:]
						continue
					}
					launch(i, name, blockID)
					dispatched = true
					break
				}
				pending[name] = q
				if !dispatched {
					d.releaseFair(name)
					break
				}
			}
		}
	}

	// hedgeDeadline is the straggler threshold: the configured quantile
	// of observed block latencies, falling back to a fixed delay until
	// the histogram is populated (Aktaş et al.: duplicate the slow
	// reads, take the fastest responses).
	hedgeDeadline := func() time.Duration {
		if e.cfg.Obs != nil {
			h := e.cfg.Obs.Histogram("transfer.down.block_seconds")
			if h.Count() >= int64(e.cfg.HedgeMinSamples) {
				if q := h.Quantile(e.cfg.HedgeQuantile); q > 0 {
					return time.Duration(q * float64(time.Second))
				}
			}
		}
		return e.cfg.HedgeFallbackDelay
	}

	// launchHedges issues one duplicate request for every flight past
	// the deadline, on the healthiest spare cloud that holds the block
	// and has an idle connection. A flight is hedged at most once.
	launchHedges := func(deadline time.Duration) {
		now := e.cfg.Clock.Now()
		for key, f := range flights {
			if f.done || f.hedged || now.Before(f.start.Add(deadline)) {
				continue
			}
			f.hedged = true
			placed := false
			cands := items[key.item].Plan.HedgeCandidates(key.blockID)
			if e.cfg.Health != nil {
				cands = e.cfg.Health.Healthiest(cands)
			}
			for _, spare := range cands {
				if d.dead[spare] || d.idle[spare] <= 0 || !e.admits(spare) {
					continue
				}
				// Hedges take spare shared capacity opportunistically:
				// TryAcquire leaves no waiting mark, so a refused hedge
				// never reserves capacity against other tenants.
				if f := e.cfg.Fair; f != nil && !f.TryAcquire(spare, e.cfg.Tenant) {
					continue
				}
				if !items[key.item].Plan.Hedge(key.blockID, spare) {
					d.releaseFair(spare)
					continue
				}
				launch(key.item, spare, key.blockID)
				f.dup = true
				reg.Counter("transfer.down.hedges").Inc()
				placed = true
				break
			}
			if !placed {
				reg.Counter("transfer.down.hedge_skipped").Inc()
			}
		}
	}

	// nextHedgeDue returns the earliest unhedged flight's deadline.
	nextHedgeDue := func(deadline time.Duration) (time.Time, bool) {
		var due time.Time
		found := false
		for _, f := range flights {
			if f.done || f.hedged {
				continue
			}
			t := f.start.Add(deadline)
			if !found || t.Before(due) {
				due, found = t, true
			}
		}
		return due, found
	}

	batchStart := e.cfg.Clock.Now()
	var bytesOK int64
	notified := make([]bool, len(items))
	if f := e.cfg.Fair; f != nil {
		defer f.EndBatch(e.cfg.Tenant)
	}
	dispatch()
	for {
		if d.active == 0 {
			if ctx.Err() != nil || !d.fairDenied {
				break
			}
			// Same lost-wakeup-free wait as the upload path: capture
			// the generation, retry, then sleep on it.
			ch := e.cfg.Fair.Changed()
			d.fairDenied = false
			dispatch()
			if d.active > 0 || !d.fairDenied {
				continue
			}
			if !e.awaitFair(ctx, ch) {
				break
			}
			d.fairDenied = false
			dispatch()
			continue
		}
		deadline := hedgeDeadline()
		var hedgeTimer <-chan time.Time
		if due, ok := nextHedgeDue(deadline); ok {
			wait := due.Sub(e.cfg.Clock.Now())
			if wait <= 0 {
				launchHedges(deadline)
				continue
			}
			hedgeTimer = e.cfg.Clock.After(wait)
		}
		var r result
		select {
		case r = <-d.results:
		case <-hedgeTimer:
			launchHedges(deadline)
			continue
		}
		d.release(r.cloudName)
		key := flightKey{r.item, r.blockID}
		f := flights[key]
		f.attempts[r.cloudName]()
		delete(f.attempts, r.cloudName)
		if len(f.attempts) == 0 {
			delete(flights, key)
		}
		if f.done {
			// The block was already completed by the other fetcher;
			// this is the cancelled loser draining. No plan calls, no
			// health verdicts — just the freed slot.
			reg.Counter("transfer.down.hedge_cancelled").Inc()
			if ctx.Err() == nil {
				dispatch()
			}
			continue
		}
		reg.Counter("transfer.down.retries").Add(int64(r.attempts - 1))
		plan := items[r.item].Plan
		if r.err == nil {
			if want := items[r.item].Sums[r.blockID]; want != 0 && meta.BlockSum(r.data) != want {
				// The transport succeeded but the content is wrong: the
				// cloud's copy rotted (or was replaced). Convert it into a
				// block failure so the plan re-fetches from another holder
				// — corrupt bytes must never reach the caller — and feed
				// the breaker: a cloud serving garbage is evidence of
				// unhealth just like a cloud refusing requests. The flight
				// stays open (f.done unset): a hedged twin may still
				// deliver a good copy.
				reg.Counter("transfer.down.corrupt_blocks").Inc()
				if e.cfg.Health != nil {
					e.cfg.Health.ReportCorrupt(r.cloudName)
				}
				plan.NoteCorrupt()
				r.err = fmt.Errorf("transfer: block %s from %s: %w",
					meta.BlockName(items[r.item].SegID, r.blockID), r.cloudName, cloud.ErrCorrupt)
				r.data = nil
			}
		}
		if r.err != nil {
			reg.Counter("transfer.down.blocks_failed").Inc()
			if d.markOutcome(r.cloudName, r.err) {
				reg.Counter("transfer.clouds_marked_dead").Inc()
				markDeadForBatch(r.cloudName)
			}
			plan.Fail(r.cloudName, r.blockID)
			// The failed block is back on some holder's queue; make the
			// item findable there again.
			requeueItem(r.item)
			e.prober.ObserveFailure(r.cloudName, sched.Down)
		} else {
			f.done = true
			if f.dup {
				if r.cloudName == f.primary {
					reg.Counter("transfer.down.hedge_losses").Inc()
				} else {
					reg.Counter("transfer.down.hedge_wins").Inc()
				}
			}
			// First response wins: cancel any other attempt still
			// running for this block.
			for _, cancel := range f.attempts {
				cancel()
			}
			reg.Counter("transfer.down.blocks").Inc()
			reg.Counter("transfer.down.bytes").Add(r.size)
			reg.Histogram("transfer.down.block_seconds").ObserveDuration(r.dur)
			bytesOK += r.size
			plan.Complete(r.cloudName, r.blockID)
			blocks[r.item][r.blockID] = r.data
			e.prober.Observe(r.cloudName, sched.Down, r.size, r.dur)
			d.markOutcome(r.cloudName, nil)
			// Completion callbacks fire here, on the dispatcher's own
			// goroutine (the DownloadBatch caller), never concurrently —
			// the serialization contract documented on DownloadItem.Done.
			if plan.Done() && !notified[r.item] && items[r.item].Done != nil {
				notified[r.item] = true
				items[r.item].Done(blocks[r.item])
			}
		}
		if ctx.Err() != nil {
			continue
		}
		dispatch()
	}
	if secs := e.cfg.Clock.Now().Sub(batchStart).Seconds(); secs > 0 && bytesOK > 0 {
		reg.Gauge("transfer.down.goodput_bps").Set(float64(bytesOK) / secs)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return blocks, nil
}

func (e *Engine) downloadBlock(ctx context.Context, results chan<- result, item int,
	cloudName, segID string, blockID int) {

	c := e.clouds[cloudName]
	path := e.BlockPath(segID, blockID)
	start := e.cfg.Clock.Now()
	attempts := 0
	var data []byte
	err := cloud.Retry(ctx, e.retryPolicy(), func() error {
		attempts++
		var derr error
		data, derr = c.Download(ctx, path)
		return derr
	})
	results <- result{
		item:      item,
		cloudName: cloudName,
		blockID:   blockID,
		data:      data,
		size:      int64(len(data)),
		dur:       e.cfg.Clock.Now().Sub(start),
		attempts:  attempts,
		err:       err,
	}
}

// SurveyBlocks verifies block existence by listing: one List of the
// block directory per cloud, filtered down to the requested segments.
// It returns, for each segment that has any surviving blocks, the
// block locations that actually exist right now — crash recovery uses
// this to resume interrupted uploads without re-uploading present
// blocks, and to find orphans to reclaim.
//
// The survey is conservative by construction: a cloud whose List
// fails (counted under transfer.survey.clouds_failed) simply
// contributes no locations, so its blocks are neither adopted nor
// deleted. A missing block directory is an empty cloud, not a
// failure.
func (e *Engine) SurveyBlocks(ctx context.Context, segIDs []string) map[string][]meta.BlockLocation {
	want := make(map[string]bool, len(segIDs))
	for _, id := range segIDs {
		want[id] = true
	}
	out := make(map[string][]meta.BlockLocation)
	for _, name := range e.names {
		entries, err := e.clouds[name].List(ctx, e.cfg.BlockDir)
		if errors.Is(err, cloud.ErrNotFound) {
			continue
		}
		if err != nil {
			e.cfg.Obs.Counter("transfer.survey.clouds_failed").Inc()
			continue
		}
		for _, en := range entries {
			if en.IsDir {
				continue
			}
			segID, blockID, ok := meta.ParseBlockName(en.Name)
			if !ok || !want[segID] {
				continue
			}
			out[segID] = append(out[segID], meta.BlockLocation{BlockID: blockID, CloudID: name})
		}
	}
	return out
}

// CloudNames returns the engine's cloud names, sorted.
func (e *Engine) CloudNames() []string {
	return append([]string(nil), e.names...)
}

// ListBlockNames lists the block directory of one cloud and returns
// the raw block file names. A missing directory is an empty cloud,
// not an error; any other List failure is returned so callers (the
// scrubber, Fsck) can treat the cloud's contents as unknown instead
// of empty.
func (e *Engine) ListBlockNames(ctx context.Context, cloudName string) ([]string, error) {
	c, ok := e.clouds[cloudName]
	if !ok {
		return nil, fmt.Errorf("transfer: unknown cloud %q", cloudName)
	}
	entries, err := c.List(ctx, e.cfg.BlockDir)
	if errors.Is(err, cloud.ErrNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, en := range entries {
		if !en.IsDir {
			names = append(names, en.Name)
		}
	}
	return names, nil
}

// FetchBlock downloads one coded block from one specific cloud, with
// the engine's transient-retry policy. Unlike the plan-driven batch
// paths it does no verification and no failover — the scrubber uses
// it to examine exactly the copy a cloud holds.
func (e *Engine) FetchBlock(ctx context.Context, cloudName, segID string, blockID int) ([]byte, error) {
	c, ok := e.clouds[cloudName]
	if !ok {
		return nil, fmt.Errorf("transfer: unknown cloud %q", cloudName)
	}
	var data []byte
	err := cloud.Retry(ctx, e.retryPolicy(), func() error {
		var derr error
		data, derr = c.Download(ctx, e.BlockPath(segID, blockID))
		return derr
	})
	return data, err
}

// PutBlock uploads one coded block to one specific cloud, with the
// engine's transient-retry policy — the scrubber's repair write path.
func (e *Engine) PutBlock(ctx context.Context, cloudName, segID string, blockID int, data []byte) error {
	c, ok := e.clouds[cloudName]
	if !ok {
		return fmt.Errorf("transfer: unknown cloud %q", cloudName)
	}
	return cloud.Retry(ctx, e.retryPolicy(), func() error {
		return c.Upload(ctx, e.BlockPath(segID, blockID), data)
	})
}

// DeleteBlocks removes the given blocks (block ID -> cloud) of a
// segment from their clouds, ignoring individual failures (orphaned
// blocks are garbage-collected by later delete passes). It reports
// the number of successful deletions.
func (e *Engine) DeleteBlocks(ctx context.Context, segID string, placement map[int]string) int {
	okCount := 0
	for blockID, cloudName := range placement {
		c, ok := e.clouds[cloudName]
		if !ok {
			e.cfg.Obs.Counter("transfer.delete.unknown_cloud").Inc()
			continue
		}
		if err := c.Delete(ctx, e.BlockPath(segID, blockID)); err == nil {
			okCount++
			e.cfg.Obs.Counter("transfer.delete.blocks").Inc()
		} else {
			e.cfg.Obs.Counter("transfer.delete.blocks_failed").Inc()
		}
	}
	return okCount
}
