package transfer

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"unidrive/internal/cloud"
	"unidrive/internal/cloudsim"
	"unidrive/internal/obs"
	"unidrive/internal/sched"
)

// TestFairSchedulerStarvationBound drives the scheduler through the
// exact scenario of the starvation-bound claim: tenant A saturates a
// cloud, tenant B arrives, and every slot freed by one of A's
// completions must fall to B until B holds its full fair share — so B
// reaches quota within share(B) <= conns completions, with zero
// preemption.
func TestFairSchedulerStarvationBound(t *testing.T) {
	const conns = 5
	f := NewFairScheduler(conns, nil)
	// fill models a dispatcher: keep asking until refused, so an
	// active tenant always has a standing waiting mark when denied.
	fill := func(tenant string) (granted int) {
		for f.Acquire("c1", tenant) {
			granted++
		}
		return granted
	}
	if got := fill("A"); got != conns {
		t.Fatalf("A got %d slots of an empty cloud, want %d", got, conns)
	}
	if fill("B") != 0 {
		t.Fatal("B granted a slot on a full cloud")
	}
	// Two equal-weight contenders: share = floor(5/2) = 2 each.
	const shareB = 2
	completions := 0
	for f.Held("c1", "B") < shareB {
		// One of A's transfers completes...
		f.Release("c1", "A")
		completions++
		// ...and A's dispatcher immediately tries to re-take the slot.
		// B waits under its share, so the over-share grant must be
		// refused and the slot reserved for B.
		if f.Acquire("c1", "A") {
			t.Fatalf("A re-took the freed slot over waiting tenant B (completion %d)", completions)
		}
		if fill("B") != 1 {
			t.Fatalf("B refused its reserved free slot (completion %d)", completions)
		}
		if completions > conns {
			t.Fatalf("B not at share after %d completions; starvation bound broken", completions)
		}
	}
	if completions > shareB {
		t.Fatalf("B needed %d completions to reach share %d", completions, shareB)
	}
	// With B at its share, a freed slot is again grantable to A
	// (work conservation resumes).
	f.Release("c1", "A")
	if !f.Acquire("c1", "A") {
		t.Fatal("A denied a free slot with no under-share waiter")
	}
}

// TestFairSchedulerWeighted checks that quotas follow weights: with
// conns=6 and weights 2:1, both dispatchers contending converge to
// held slots 4 and 2.
func TestFairSchedulerWeighted(t *testing.T) {
	f := NewFairScheduler(6, nil)
	f.SetWeight("heavy", 2)
	fill := func(tenant string) {
		for f.Acquire("c1", tenant) {
		}
	}
	fill("heavy")
	if f.Held("c1", "heavy") != 6 {
		t.Fatalf("heavy holds %d of an empty cloud, want 6", f.Held("c1", "heavy"))
	}
	fill("light")
	// Drive completions of the saturator; after each, both
	// dispatchers re-contend. The system must settle at the weighted
	// shares 4:2 and stay there.
	for i := 0; i < 10; i++ {
		f.Release("c1", "heavy")
		fill("light")
		fill("heavy")
	}
	if h, l := f.Held("c1", "heavy"), f.Held("c1", "light"); h != 4 || l != 2 {
		t.Fatalf("settled at heavy=%d light=%d, want 4/2", h, l)
	}
}

// TestFairSchedulerTryAcquireLeavesNoMark: a refused TryAcquire (the
// hedge path) must not reserve freed capacity, while a refused
// Acquire must.
func TestFairSchedulerTryAcquireLeavesNoMark(t *testing.T) {
	f := NewFairScheduler(2, nil)
	f.Acquire("c1", "A")
	f.Acquire("c1", "A")
	if f.TryAcquire("c1", "B") {
		t.Fatal("TryAcquire granted on full cloud")
	}
	f.Release("c1", "A")
	// No waiting mark from B: A may re-take the slot (work conserving).
	if !f.Acquire("c1", "A") {
		t.Fatal("A denied although B left no waiting mark")
	}
	if f.Acquire("c1", "B") {
		t.Fatal("B granted on full cloud")
	}
	f.Release("c1", "A")
	// Now B's Acquire refusal did leave a mark: the freed slot is B's.
	if f.Acquire("c1", "A") {
		t.Fatal("A re-took the slot over a marked waiter")
	}
	if !f.Acquire("c1", "B") {
		t.Fatal("B denied its reserved slot")
	}
	// EndBatch clears B's remaining marks so A is unconstrained again.
	if f.Acquire("c1", "B") {
		t.Fatal("B granted on full cloud")
	}
	f.EndBatch("B")
	f.Release("c1", "B")
	if !f.Acquire("c1", "A") {
		t.Fatal("A denied after the waiter ended its batch")
	}
}

// TestFairSchedulerChangedBroadcast: the Changed generation closes on
// releases, so refused engines sleeping on it always wake.
func TestFairSchedulerChangedBroadcast(t *testing.T) {
	f := NewFairScheduler(1, nil)
	f.Acquire("c1", "A")
	ch := f.Changed()
	select {
	case <-ch:
		t.Fatal("channel closed before any state change")
	default:
	}
	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()
	f.Release("c1", "A")
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("release did not wake the waiter")
	}
}

// fairRig builds one tenant's stack: its own stores (a tenant has its
// own cloud accounts), Flaky wrappers with latency so transfers
// occupy slots for real time, its own registry — and an engine bound
// to the shared FairScheduler.
type fairRig struct {
	stores []*cloudsim.Store
	engine *Engine
	names  []string
	reg    *obs.Registry
}

func newFairRig(t *testing.T, tenant string, fair *FairScheduler, latency time.Duration) *fairRig {
	t.Helper()
	r := &fairRig{reg: obs.NewRegistry()}
	var clouds []cloud.Interface
	for i := 0; i < 5; i++ {
		st := cloudsim.NewStore(fmt.Sprintf("c%d", i), 0)
		fl := cloudsim.NewFlaky(cloudsim.NewDirect(st), 0, int64(i+1))
		fl.SetLatency(latency, latency/4)
		r.stores = append(r.stores, st)
		r.names = append(r.names, st.Name())
		clouds = append(clouds, fl)
	}
	r.engine = New(clouds, sched.NewProber(0), Config{
		ConnsPerCloud: fair.Conns(),
		Fair:          fair,
		Tenant:        tenant,
		Obs:           r.reg,
	})
	return r
}

func (r *fairRig) upload(t *testing.T, segs int, size int) error {
	t.Helper()
	coder := paperCoder(t)
	items := make([]UploadItem, 0, segs)
	for s := 0; s < segs; s++ {
		seg := make([]byte, size)
		rand.New(rand.NewSource(int64(s + 1))).Read(seg)
		plan, err := sched.NewUploadPlan(paperParams, r.names)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, UploadItem{
			Plan:  plan,
			SegID: fmt.Sprintf("seg%d", s),
			Src:   coderSource(t, coder, seg),
		})
	}
	_, err := r.engine.UploadBatch(context.Background(), items, nil)
	return err
}

// TestFairShareIsolationUnderSaturation is the engine-level half of
// the fair-share satellite: tenant A saturates the shared per-cloud
// connection budget with a long batch; tenant B arrives mid-flight
// with a small one. B must neither deadlock nor wait for A's whole
// queue — it finishes while A is still uploading — and the shared
// scheduler must have actually refused over-share grants (i.e. there
// was real contention, not just idle capacity). Runs under -race via
// the transfer race list.
func TestFairShareIsolationUnderSaturation(t *testing.T) {
	sharedReg := obs.NewRegistry()
	fair := NewFairScheduler(2, sharedReg)
	a := newFairRig(t, "tenantA", fair, 8*time.Millisecond)
	b := newFairRig(t, "tenantB", fair, 8*time.Millisecond)

	var wg sync.WaitGroup
	wg.Add(1)
	var aErr error
	var aDone time.Time
	go func() {
		defer wg.Done()
		aErr = a.upload(t, 16, 3000)
		aDone = time.Now()
	}()
	// Let A soak up the shared slots before B shows up.
	time.Sleep(12 * time.Millisecond)
	bErr := b.upload(t, 2, 3000)
	bDone := time.Now()
	wg.Wait()

	if aErr != nil || bErr != nil {
		t.Fatalf("uploads failed: a=%v b=%v", aErr, bErr)
	}
	if !bDone.Before(aDone) {
		t.Fatal("small tenant B finished after saturating tenant A — B was starved behind A's queue")
	}
	if sharedReg.Snapshot().Counter("fair.denied") == 0 {
		t.Fatal("scheduler never denied a grant — no contention was exercised")
	}
	// All slots returned: the scheduler is drained.
	for _, name := range a.names {
		for _, tenant := range []string{"tenantA", "tenantB"} {
			if h := fair.Held(name, tenant); h != 0 {
				t.Fatalf("%s still holds %d slots on %s after both batches", tenant, h, name)
			}
		}
	}
	// Tenant B's blocks landed in B's own stores (separate accounts).
	total := 0
	for _, st := range b.stores {
		total += st.FileCount()
	}
	if total < paperParams.NormalBlocks()*2 {
		t.Fatalf("tenant B's stores hold %d blocks, want >= %d", total, paperParams.NormalBlocks()*2)
	}
}

// TestFairDownloadContention drives the download path through the
// shared scheduler: A's long download batch saturates the slots while
// B downloads a segment — B must complete and the drained scheduler
// must hold nothing.
func TestFairDownloadContention(t *testing.T) {
	sharedReg := obs.NewRegistry()
	fair := NewFairScheduler(2, sharedReg)
	a := newFairRig(t, "tenantA", fair, 6*time.Millisecond)
	b := newFairRig(t, "tenantB", fair, 6*time.Millisecond)
	if err := a.upload(t, 10, 3000); err != nil {
		t.Fatal(err)
	}
	if err := b.upload(t, 2, 3000); err != nil {
		t.Fatal(err)
	}

	download := func(r *fairRig, segs int) error {
		items := make([]DownloadItem, 0, segs)
		for s := 0; s < segs; s++ {
			locations := map[int][]string{}
			for blockID := 0; blockID < paperParams.CodeN(); blockID++ {
				for _, st := range r.stores {
					if _, err := cloudsim.NewDirect(st).Download(context.Background(),
						r.engine.BlockPath(fmt.Sprintf("seg%d", s), blockID)); err == nil {
						locations[blockID] = append(locations[blockID], st.Name())
					}
				}
			}
			plan, err := sched.NewDownloadPlan(paperParams.K, locations)
			if err != nil {
				return err
			}
			items = append(items, DownloadItem{Plan: plan, SegID: fmt.Sprintf("seg%d", s)})
		}
		res, err := r.engine.DownloadBatch(context.Background(), items)
		if err != nil {
			return err
		}
		for i, m := range res {
			if len(m) < paperParams.K {
				return fmt.Errorf("segment %d: only %d blocks", i, len(m))
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var aErr error
	go func() {
		defer wg.Done()
		aErr = download(a, 10)
	}()
	time.Sleep(8 * time.Millisecond)
	bErr := download(b, 2)
	wg.Wait()
	if aErr != nil || bErr != nil {
		t.Fatalf("downloads failed: a=%v b=%v", aErr, bErr)
	}
	for _, name := range a.names {
		for _, tenant := range []string{"tenantA", "tenantB"} {
			if h := fair.Held(name, tenant); h != 0 {
				t.Fatalf("%s still holds %d slots on %s after the batches", tenant, h, name)
			}
		}
	}
}
