package transfer

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"unidrive/internal/cloud"
	"unidrive/internal/cloudsim"
	"unidrive/internal/erasure"
	"unidrive/internal/netsim"
	"unidrive/internal/sched"
	"unidrive/internal/vclock"
)

var paperParams = sched.Params{N: 5, K: 3, Kr: 3, Ks: 2}

// directRig builds five unshaped clouds plus an engine.
type directRig struct {
	stores []*cloudsim.Store
	flaky  []*cloudsim.Flaky
	engine *Engine
	names  []string
}

func newDirectRig(t *testing.T, n int) *directRig {
	t.Helper()
	r := &directRig{}
	var clouds []cloud.Interface
	for i := 0; i < n; i++ {
		st := cloudsim.NewStore(fmt.Sprintf("c%d", i), 0)
		fl := cloudsim.NewFlaky(cloudsim.NewDirect(st), 0, int64(i+1))
		r.stores = append(r.stores, st)
		r.flaky = append(r.flaky, fl)
		r.names = append(r.names, st.Name())
		clouds = append(clouds, fl)
	}
	r.engine = New(clouds, sched.NewProber(0), Config{})
	return r
}

// coderSource builds a BlockSource over a coded segment.
func coderSource(t *testing.T, coder *erasure.Coder, segment []byte) BlockSource {
	t.Helper()
	return func(blockID int) ([]byte, error) {
		return coder.EncodeBlocks(segment, []int{blockID})[0], nil
	}
}

func paperCoder(t *testing.T) *erasure.Coder {
	t.Helper()
	c, err := erasure.NewCoder(paperParams.K, paperParams.CodeN())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestUploadSegmentToReliability(t *testing.T) {
	r := newDirectRig(t, 5)
	seg := make([]byte, 3000)
	rand.New(rand.NewSource(1)).Read(seg)
	coder := paperCoder(t)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.engine.UploadSegment(context.Background(), plan, "seg1", coderSource(t, coder, seg), nil); err != nil {
		t.Fatal(err)
	}
	if !plan.Available() || !plan.Reliable() {
		t.Fatalf("plan state: available=%v reliable=%v", plan.Available(), plan.Reliable())
	}
	// Every cloud holds exactly its fair share (no over-provisioning
	// needed: instant clouds all finish together).
	placement := plan.Placement()
	if len(placement) < paperParams.NormalBlocks() {
		t.Fatalf("placement has %d blocks, want >= %d", len(placement), paperParams.NormalBlocks())
	}
	// Blocks physically exist where the placement says.
	for blockID, cloudName := range placement {
		var store *cloudsim.Store
		for _, s := range r.stores {
			if s.Name() == cloudName {
				store = s
			}
		}
		d := cloudsim.NewDirect(store)
		data, err := d.Download(context.Background(), r.engine.BlockPath("seg1", blockID))
		if err != nil {
			t.Fatalf("block %d missing on %s: %v", blockID, cloudName, err)
		}
		want := coder.EncodeBlocks(seg, []int{blockID})[0]
		if !bytes.Equal(data, want) {
			t.Fatalf("block %d content mismatch", blockID)
		}
	}
}

func TestUploadStopsAtAvailability(t *testing.T) {
	r := newDirectRig(t, 5)
	seg := make([]byte, 900)
	rand.New(rand.NewSource(2)).Read(seg)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	err = r.engine.UploadSegment(context.Background(), plan, "seg1",
		coderSource(t, paperCoder(t), seg), plan.Available)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Available() {
		t.Fatal("stop condition returned before availability")
	}
	// Dispatching stops at availability; only blocks already in
	// flight may complete afterwards, so the plan must not have run
	// anywhere near the 10-block over-provisioning ceiling.
	if got := len(plan.UploadedBlocks()); got > paperParams.NormalBlocks()+2 {
		t.Fatalf("uploaded %d blocks despite availability stop", got)
	}
}

func TestUploadSurvivesCloudOutage(t *testing.T) {
	r := newDirectRig(t, 5)
	r.flaky[2].SetDown(true)
	seg := make([]byte, 1200)
	rand.New(rand.NewSource(3)).Read(seg)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.engine.UploadSegment(context.Background(), plan, "seg1",
		coderSource(t, paperCoder(t), seg), nil); err != nil {
		t.Fatal(err)
	}
	if !plan.Available() {
		t.Fatal("upload not available despite 4 live clouds")
	}
	if !plan.Reliable() {
		t.Fatal("reliability over live clouds not reached")
	}
	if r.stores[2].FileCount() != 0 {
		t.Fatal("blocks landed on a down cloud")
	}
}

func TestUploadRetriesTransientFailures(t *testing.T) {
	r := newDirectRig(t, 5)
	for _, f := range r.flaky {
		// 30% failure per call; retried up to 3 times per block.
		*f = *cloudsim.NewFlaky(cloudsim.NewDirect(r.stores[0]), 0.3, 42)
	}
	// Rebuild rig cleanly instead: the above reuses store 0; do it properly.
	r = newDirectRig(t, 5)
	var clouds []cloud.Interface
	for i, st := range r.stores {
		clouds = append(clouds, cloudsim.NewFlaky(cloudsim.NewDirect(st), 0.3, int64(100+i)))
	}
	engine := New(clouds, sched.NewProber(0), Config{RetryAttempts: 5, DeadAfter: 10})
	seg := make([]byte, 600)
	rand.New(rand.NewSource(4)).Read(seg)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.UploadSegment(context.Background(), plan, "seg1",
		coderSource(t, paperCoder(t), seg), nil); err != nil {
		t.Fatal(err)
	}
	if !plan.Reliable() {
		t.Fatal("transient failures defeated the upload")
	}
}

func TestDownloadRoundTrip(t *testing.T) {
	r := newDirectRig(t, 5)
	seg := make([]byte, 5000)
	rand.New(rand.NewSource(5)).Read(seg)
	coder := paperCoder(t)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.engine.UploadSegment(context.Background(), plan, "segX",
		coderSource(t, coder, seg), nil); err != nil {
		t.Fatal(err)
	}

	locations := make(map[int][]string)
	for b, c := range plan.Placement() {
		locations[b] = []string{c}
	}
	dplan, err := sched.NewDownloadPlan(paperParams.K, locations)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := r.engine.DownloadSegment(context.Background(), dplan, "segX")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) < paperParams.K {
		t.Fatalf("downloaded %d blocks, want >= %d", len(blocks), paperParams.K)
	}
	got, err := coder.Decode(blocks, len(seg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, seg) {
		t.Fatal("decoded segment differs from original")
	}
}

func TestDownloadWithOutagesUsesSurvivors(t *testing.T) {
	r := newDirectRig(t, 5)
	seg := make([]byte, 2000)
	rand.New(rand.NewSource(6)).Read(seg)
	coder := paperCoder(t)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.engine.UploadSegment(context.Background(), plan, "segX",
		coderSource(t, coder, seg), nil); err != nil {
		t.Fatal(err)
	}
	// Take down 2 of 5 clouds (Kr = 3 still satisfied).
	r.flaky[0].SetDown(true)
	r.flaky[4].SetDown(true)

	locations := make(map[int][]string)
	for b, c := range plan.Placement() {
		locations[b] = []string{c}
	}
	dplan, err := sched.NewDownloadPlan(paperParams.K, locations)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := r.engine.DownloadSegment(context.Background(), dplan, "segX")
	if err != nil {
		t.Fatal(err)
	}
	got, err := coder.Decode(blocks, len(seg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, seg) {
		t.Fatal("decode after outages failed")
	}
}

func TestDownloadUnrecoverable(t *testing.T) {
	r := newDirectRig(t, 5)
	seg := make([]byte, 800)
	rand.New(rand.NewSource(7)).Read(seg)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.engine.UploadSegment(context.Background(), plan, "segX",
		coderSource(t, paperCoder(t), seg), nil); err != nil {
		t.Fatal(err)
	}
	// Ks=2: a single cloud must NOT suffice. Down all but one.
	for i := 0; i < 4; i++ {
		r.flaky[i].SetDown(true)
	}
	locations := make(map[int][]string)
	for b, c := range plan.Placement() {
		locations[b] = []string{c}
	}
	dplan, err := sched.NewDownloadPlan(paperParams.K, locations)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.engine.DownloadSegment(context.Background(), dplan, "segX")
	if !errors.Is(err, ErrSegmentUnrecoverable) {
		t.Fatalf("err = %v, want ErrSegmentUnrecoverable (security property)", err)
	}
}

func TestOverProvisioningFavoursFastClouds(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-shaped test is unreliable under the race detector")
	}
	// Two fast clouds, two very slow ones: the fast pair must finish
	// their fair shares and take over-provisioned extras while the
	// slow pair grinds.
	clk := vclock.NewScaled(300)
	cfg := netsim.DefaultConfig(1)
	cfg.DegradedProb = 0
	profiles := []netsim.CloudProfile{
		{Name: "fast1", UpMbps: 80, DownMbps: 80, PerConnMbps: 40, Sigma: 0.0001},
		{Name: "fast2", UpMbps: 80, DownMbps: 80, PerConnMbps: 40, Sigma: 0.0001},
		{Name: "slow1", UpMbps: 2, DownMbps: 2, PerConnMbps: 1, Sigma: 0.0001},
		{Name: "slow2", UpMbps: 2, DownMbps: 2, PerConnMbps: 1, Sigma: 0.0001},
	}
	env := netsim.NewEnv(clk, cfg, profiles)
	host := env.NewHost(netsim.LocationProfile{Name: "here", UplinkMbps: 10000, DownlinkMbps: 10000})
	var clouds []cloud.Interface
	var names []string
	for _, p := range profiles {
		clouds = append(clouds, cloudsim.NewClient(cloudsim.NewStore(p.Name, 0), host))
		names = append(names, p.Name)
	}
	engine := New(clouds, sched.NewProber(0), Config{Clock: clk, ConnsPerCloud: 2})

	params := sched.Params{N: 4, K: 4, Kr: 2, Ks: 2} // fair 2, maxPC 3, normal 8, max 12
	coder, err := erasure.NewCoder(params.K, params.CodeN())
	if err != nil {
		t.Fatal(err)
	}
	seg := make([]byte, 1<<20)
	rand.New(rand.NewSource(8)).Read(seg)
	plan, err := sched.NewUploadPlan(params, names)
	if err != nil {
		t.Fatal(err)
	}
	// Stop at reliability, as the paper's over-provisioning window
	// does: extras flow only while the slowest cloud is still
	// uploading its fair share.
	if err := engine.UploadSegment(context.Background(), plan, "segOP",
		coderSource(t, coder, seg), plan.Reliable); err != nil {
		t.Fatal(err)
	}
	if plan.OverProvisioned() == 0 {
		t.Fatal("no over-provisioned blocks despite 40x speed disparity")
	}
	perCloud := map[string]int{}
	for _, c := range plan.Placement() {
		perCloud[c]++
	}
	if perCloud["fast1"]+perCloud["fast2"] <= perCloud["slow1"]+perCloud["slow2"] {
		t.Fatalf("fast clouds did not receive more blocks: %v", perCloud)
	}
	for c, n := range perCloud {
		if n > params.MaxPerCloud() {
			t.Fatalf("%s holds %d blocks, security cap is %d", c, n, params.MaxPerCloud())
		}
	}
}

func TestDeleteBlocks(t *testing.T) {
	r := newDirectRig(t, 5)
	seg := make([]byte, 500)
	rand.New(rand.NewSource(9)).Read(seg)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.engine.UploadSegment(context.Background(), plan, "segDel",
		coderSource(t, paperCoder(t), seg), nil); err != nil {
		t.Fatal(err)
	}
	placement := plan.Placement()
	n := r.engine.DeleteBlocks(context.Background(), "segDel", placement)
	if n != len(placement) {
		t.Fatalf("deleted %d of %d blocks", n, len(placement))
	}
	for _, st := range r.stores {
		if st.FileCount() != 0 {
			t.Fatalf("%s still has %d files", st.Name(), st.FileCount())
		}
	}
}

func TestProberFedByTransfers(t *testing.T) {
	r := newDirectRig(t, 5)
	seg := make([]byte, 400)
	rand.New(rand.NewSource(10)).Read(seg)
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.engine.UploadSegment(context.Background(), plan, "segP",
		coderSource(t, paperCoder(t), seg), nil); err != nil {
		t.Fatal(err)
	}
	sampled := 0
	for _, n := range r.names {
		if r.engine.Prober().Samples(n, sched.Up) > 0 {
			sampled++
		}
	}
	if sampled == 0 {
		t.Fatal("no prober samples recorded by uploads")
	}
}

func TestUploadContextCancelled(t *testing.T) {
	r := newDirectRig(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plan, err := sched.NewUploadPlan(paperParams, r.names)
	if err != nil {
		t.Fatal(err)
	}
	err = r.engine.UploadSegment(ctx, plan, "segC",
		func(int) ([]byte, error) { return []byte{1}, nil }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBlockPath(t *testing.T) {
	r := newDirectRig(t, 1)
	if got := r.engine.BlockPath("abc", 4); got != ".unidrive/blocks/abc.4" {
		t.Fatalf("BlockPath = %q", got)
	}
	if r.engine.BlockDir() != DefaultBlockDir {
		t.Fatal("BlockDir default wrong")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with no clouds did not panic")
		}
	}()
	New(nil, sched.NewProber(0), Config{})
}

func TestDownloadSpeedFavoursFastClouds(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-shaped test is unreliable under the race detector")
	}
	// Blocks replicated on both a fast and a slow cloud: the engine
	// should fetch predominantly from the fast one once probed.
	clk := vclock.NewScaled(300)
	cfg := netsim.DefaultConfig(2)
	cfg.DegradedProb = 0
	profiles := []netsim.CloudProfile{
		{Name: "fast", UpMbps: 100, DownMbps: 100, PerConnMbps: 50, Sigma: 0.0001},
		{Name: "slow", UpMbps: 2, DownMbps: 2, PerConnMbps: 1, Sigma: 0.0001},
	}
	env := netsim.NewEnv(clk, cfg, profiles)
	host := env.NewHost(netsim.LocationProfile{Name: "here", UplinkMbps: 10000, DownlinkMbps: 10000})
	fastStore := cloudsim.NewStore("fast", 0)
	slowStore := cloudsim.NewStore("slow", 0)
	clouds := []cloud.Interface{
		cloudsim.NewClient(fastStore, host),
		cloudsim.NewClient(slowStore, host),
	}
	engine := New(clouds, sched.NewProber(0), Config{Clock: clk, ConnsPerCloud: 2})

	// Place 8 blocks of 256 KB on both clouds.
	coder, err := erasure.NewCoder(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	seg := make([]byte, 1<<20)
	rand.New(rand.NewSource(11)).Read(seg)
	blocks := coder.Encode(seg)
	locations := make(map[int][]string)
	for i, b := range blocks {
		path := engine.BlockPath("segD", i)
		if err := cloudsim.NewDirect(fastStore).Upload(context.Background(), path, b); err != nil {
			t.Fatal(err)
		}
		if err := cloudsim.NewDirect(slowStore).Upload(context.Background(), path, b); err != nil {
			t.Fatal(err)
		}
		locations[i] = []string{"fast", "slow"}
	}
	// Warm the prober so ranking reflects reality.
	engine.Prober().Observe("fast", sched.Down, 1_000_000, 100*time.Millisecond)
	engine.Prober().Observe("slow", sched.Down, 10_000, time.Second)

	start := clk.Now()
	dplan, err := sched.NewDownloadPlan(4, locations)
	if err != nil {
		t.Fatal(err)
	}
	got, err := engine.DownloadSegment(context.Background(), dplan, "segD")
	if err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now().Sub(start)
	if _, err := coder.Decode(got, len(seg)); err != nil {
		t.Fatal(err)
	}
	// 4 blocks × 256KB = 1MB. From the fast cloud (100 Mbps) this is
	// well under a second; the slow path would need > 4 simulated
	// seconds. Allow margin for one straggler block on the slow
	// cloud.
	if elapsed > 5*time.Second {
		t.Fatalf("download took %v simulated; fastest-cloud scheduling ineffective", elapsed)
	}
}
