package cloudsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"unidrive/internal/cloud"
	"unidrive/internal/vclock"
)

func TestFlakyOutageWindow(t *testing.T) {
	f := NewFlaky(NewDirect(NewStore("c0", 0)), 0, 1)
	// Down between op #2 (inclusive) and op #4 (exclusive): ops 0, 1
	// succeed, 2, 3 fail with ErrUnavailable, 4 succeeds again.
	f.AddOutageWindow(2, 4)
	ctx := context.Background()
	wantDown := []bool{false, false, true, true, false}
	for i, down := range wantDown {
		if got := f.Ops(); got != i {
			t.Fatalf("Ops() = %d before op %d", got, i)
		}
		err := f.Upload(ctx, "f", []byte("x"))
		if down && !errors.Is(err, cloud.ErrUnavailable) {
			t.Fatalf("op %d: err = %v, want ErrUnavailable", i, err)
		}
		if !down && err != nil {
			t.Fatalf("op %d: err = %v, want nil", i, err)
		}
	}
	_, outage := f.InjectedFaults()
	if outage.Upload != 2 || outage.Total() != 2 {
		t.Errorf("injected outage counts = %+v, want 2 uploads", outage)
	}
}

func TestFlakyStallHangsUntilCancel(t *testing.T) {
	f := NewFlaky(NewDirect(NewStore("c0", 0)), 0, 1)
	f.SetStall(true)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := f.Download(ctx, "f")
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled call returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stalled call err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled call did not return after cancellation")
	}
	if f.Stalls() != 1 {
		t.Errorf("Stalls() = %d, want 1", f.Stalls())
	}
	// Stall off again: calls flow normally.
	f.SetStall(false)
	if err := f.Upload(context.Background(), "f", []byte("x")); err != nil {
		t.Fatalf("post-stall upload: %v", err)
	}
}

func TestFlakyStallDoesNotMaskOutage(t *testing.T) {
	f := NewFlaky(NewDirect(NewStore("c0", 0)), 0, 1)
	f.SetStall(true)
	f.SetDown(true)
	// An outage answers immediately (connection refused), it does not
	// hang — stall only applies to calls that would otherwise proceed.
	err := f.Upload(context.Background(), "f", []byte("x"))
	if !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if f.Stalls() != 0 {
		t.Errorf("Stalls() = %d, want 0", f.Stalls())
	}
}

func TestFlakyLatencyInjection(t *testing.T) {
	f := NewFlaky(NewDirect(NewStore("c0", 0)), 0, 1)
	clk := vclock.NewManual(time.Unix(0, 0))
	f.SetClock(clk)
	f.SetLatency(time.Second, 0)
	done := make(chan error, 1)
	go func() { done <- f.Upload(context.Background(), "f", []byte("x")) }()
	// The call must be parked on the manual clock, not completed.
	for i := 0; clk.PendingWaiters() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("latency-injected call returned before clock advance: %v", err)
	default:
	}
	clk.Advance(time.Second)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("upload after latency: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call never completed after clock advance")
	}
}

func TestFlakyLatencyJitterSeeded(t *testing.T) {
	// Same seed -> same jitter sequence. The jitter draw consumes the
	// shared RNG, so two identically seeded wrappers stay in lockstep.
	delays := func(seed int64) []time.Duration {
		f := NewFlaky(NewDirect(NewStore("c0", 0)), 0, seed)
		clk := vclock.NewManual(time.Unix(0, 0))
		f.SetClock(clk)
		f.SetLatency(0, 50*time.Millisecond)
		var out []time.Duration
		for i := 0; i < 5; i++ {
			done := make(chan struct{})
			go func() {
				_ = f.Upload(context.Background(), "f", []byte("x"))
				close(done)
			}()
			var d time.Duration
			for {
				select {
				case <-done:
				default:
					if clk.PendingWaiters() == 0 {
						time.Sleep(100 * time.Microsecond)
						continue
					}
					clk.Advance(time.Millisecond)
					d += time.Millisecond
					continue
				}
				break
			}
			out = append(out, d)
		}
		return out
	}
	a, b := delays(42), delays(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %v vs %v", i, a, b)
		}
	}
}

func TestFlakyLatencyInterruptibleByContext(t *testing.T) {
	f := NewFlaky(NewDirect(NewStore("c0", 0)), 0, 1)
	clk := vclock.NewManual(time.Unix(0, 0))
	f.SetClock(clk)
	f.SetLatency(time.Hour, 0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Upload(ctx, "f", []byte("x")) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("latency wait not interrupted by cancellation")
	}
}
