package cloudsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"unidrive/internal/cloud"
	"unidrive/internal/vclock"
)

// Flaky wraps a cloud.Interface and injects faults: transient
// failures with a fixed probability, full outages (switched or
// scripted per op-index window), quota exhaustion (switched or
// scripted; uploads rejected, everything else served), per-op latency
// (fixed plus seeded-random jitter), and a stall mode in which calls
// hang until their context is cancelled. Tests use it to exercise
// retry paths, circuit breakers, hedged requests, capacity
// degradation, and the lock protocol's failure handling without the
// full netsim model.
type Flaky struct {
	inner cloud.Interface
	prob  float64
	seed  int64

	mu  sync.Mutex
	rng *rand.Rand
	// down simulates a full outage when set.
	down bool
	// stall makes calls hang until ctx cancellation when set.
	stall bool
	// latBase/latJitter inject per-op latency: latBase plus a seeded
	// uniform draw from [0, latJitter).
	latBase   time.Duration
	latJitter time.Duration
	// clock paces injected latency (default: real time).
	clock vclock.Clock
	// opIndex numbers the calls seen so far; outages holds scripted
	// [from, to) windows of op indexes during which the cloud is down.
	opIndex int
	outages [][2]int
	// stalls counts calls that entered the stall state.
	stalls int
	// corrupted marks paths whose content is served damaged (at-rest
	// corruption); cleared by a successful Upload to the same path.
	corrupted map[string]CorruptMode
	// corruptServes counts downloads that returned damaged bytes.
	corruptServes int
	// quotaFull simulates an exhausted quota when set: every Upload is
	// rejected with cloud.ErrQuotaExceeded while all other operations
	// keep working — the capacity-pressure fault shape.
	quotaFull bool
	// quotaWindows holds scripted [from, to) windows of op indexes
	// during which uploads are quota-rejected, composing with
	// quotaFull the way outages compose with down.
	quotaWindows [][2]int
	// injQuota counts the quota rejections actually injected (uploads
	// only — quota never fails reads).
	injQuota int
	// injTransient / injOutage count the faults actually injected,
	// per operation, so chaos tests can reconcile observed failures
	// against them exactly.
	injTransient CallCounts
	injOutage    CallCounts
}

var _ cloud.Interface = (*Flaky)(nil)

// NewFlaky wraps inner so each call fails with probability prob.
func NewFlaky(inner cloud.Interface, prob float64, seed int64) *Flaky {
	return &Flaky{inner: inner, prob: prob, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// CorruptMode selects the shape of at-rest corruption.
type CorruptMode int

const (
	// CorruptBitFlip flips one bit of the content — silent rot that
	// only a checksum can catch.
	CorruptBitFlip CorruptMode = iota
	// CorruptTruncate drops the second half of the content — the
	// partial-object failure mode of interrupted uploads.
	CorruptTruncate
	// CorruptStale replaces the content with same-length garbage — a
	// wrong-object overwrite (misdirected write, stale replica).
	CorruptStale
)

// CorruptPath marks a stored object as damaged at rest: every
// Download of the path serves a deterministically corrupted copy (the
// same wrong bytes each time, like real bit rot) until a successful
// Upload to the path replaces the object and clears the mark.
func (f *Flaky) CorruptPath(path string, mode CorruptMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.corrupted == nil {
		f.corrupted = make(map[string]CorruptMode)
	}
	f.corrupted[path] = mode
}

// CorruptServes reports how many downloads returned damaged bytes.
func (f *Flaky) CorruptServes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.corruptServes
}

// CorruptedPaths returns the paths still marked damaged, sorted.
func (f *Flaky) CorruptedPaths() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.corrupted))
	for p := range f.corrupted {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// corruptBytes damages data deterministically from seed: repeated
// serves of the same rotten object must agree byte for byte.
func corruptBytes(data []byte, mode CorruptMode, seed int64) []byte {
	out := append([]byte(nil), data...)
	rng := rand.New(rand.NewSource(seed))
	switch mode {
	case CorruptTruncate:
		out = out[:len(out)/2]
	case CorruptStale:
		rng.Read(out)
	default: // CorruptBitFlip
		if len(out) > 0 {
			i := rng.Intn(len(out))
			out[i] ^= 1 << uint(rng.Intn(8))
		}
	}
	return out
}

// pathSeed folds a path into the wrapper's seed so each corrupted
// object gets its own, stable damage pattern.
func pathSeed(seed int64, path string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(path); i++ {
		h ^= int64(path[i])
		h *= 1099511628211
	}
	return seed ^ h
}

// SetDown switches the wrapped cloud into (or out of) a full outage.
func (f *Flaky) SetDown(down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down = down
}

// SetStall switches stall mode: while set, every call blocks until
// its context is cancelled and then returns the context's error. This
// models a hung connection (accepted but never answered) — the
// failure mode hedged requests exist for.
func (f *Flaky) SetStall(stall bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stall = stall
}

// Stalls reports how many calls entered the stall state.
func (f *Flaky) Stalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stalls
}

// SetLatency makes every call take base plus a seeded-uniform draw
// from [0, jitter) before reaching the wrapped cloud (or failing).
// Zero values disable the respective part.
func (f *Flaky) SetLatency(base, jitter time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latBase, f.latJitter = base, jitter
}

// SetClock sets the clock pacing injected latency; nil resets to the
// real wall clock.
func (f *Flaky) SetClock(clk vclock.Clock) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.clock = clk
}

// AddOutageWindow scripts a full outage between the from-th call
// (inclusive) and the to-th call (exclusive), counted across all
// operations on this wrapper. Windows compose with SetDown; outside
// every window the cloud behaves normally.
func (f *Flaky) AddOutageWindow(from, to int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.outages = append(f.outages, [2]int{from, to})
}

// SetQuotaFull switches the wrapped cloud into (or out of) quota
// exhaustion: while set, every Upload is rejected with
// cloud.ErrQuotaExceeded and counted, while downloads, lists,
// createdirs and deletes keep working — a full cloud is not a dead
// cloud.
func (f *Flaky) SetQuotaFull(full bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.quotaFull = full
}

// AddQuotaWindow scripts quota exhaustion between the from-th call
// (inclusive) and the to-th call (exclusive), counted across all
// operations on this wrapper (only uploads landing inside the window
// are rejected). Windows compose with SetQuotaFull; outside every
// window uploads flow normally.
func (f *Flaky) AddQuotaWindow(from, to int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.quotaWindows = append(f.quotaWindows, [2]int{from, to})
}

// InjectedQuota reports how many quota rejections this wrapper has
// injected — the exact count chaos soaks reconcile against the
// capacity tracker's observations.
func (f *Flaky) InjectedQuota() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injQuota
}

// Ops reports how many calls this wrapper has seen, i.e. the op index
// the next call will get — tests use it to position outage windows.
func (f *Flaky) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opIndex
}

func (f *Flaky) fail(ctx context.Context, op string, bump func(*CallCounts)) error {
	f.mu.Lock()
	idx := f.opIndex
	f.opIndex++
	down := f.down
	for _, w := range f.outages {
		if idx >= w[0] && idx < w[1] {
			down = true
			break
		}
	}
	quota := false
	if op == "upload" && !down {
		quota = f.quotaFull
		for _, w := range f.quotaWindows {
			if idx >= w[0] && idx < w[1] {
				quota = true
				break
			}
		}
	}
	var err error
	if down {
		bump(&f.injOutage)
		err = fmt.Errorf("flaky %s %s: %w", f.inner.Name(), op, cloud.ErrUnavailable)
	} else if quota {
		// Quota beats the transient dice: a full provider answers
		// deterministically, so injected rejections reconcile exactly.
		f.injQuota++
		err = fmt.Errorf("flaky %s %s: %w", f.inner.Name(), op, cloud.ErrQuotaExceeded)
	} else if f.rng.Float64() < f.prob {
		bump(&f.injTransient)
		err = fmt.Errorf("flaky %s %s: %w", f.inner.Name(), op, cloud.ErrTransient)
	}
	stall := f.stall && !down
	if stall {
		f.stalls++
	}
	var delay time.Duration
	if f.latBase > 0 {
		delay = f.latBase
	}
	if f.latJitter > 0 {
		delay += time.Duration(f.rng.Int63n(int64(f.latJitter)))
	}
	clk := f.clock
	f.mu.Unlock()

	if stall {
		<-ctx.Done()
		return fmt.Errorf("flaky %s %s stalled: %w", f.inner.Name(), op, ctx.Err())
	}
	if delay > 0 {
		if clk == nil {
			clk = vclock.Real{}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-clk.After(delay):
		}
	}
	return err
}

// InjectedFaults returns how many transient failures and outage
// errors this wrapper has injected so far, per operation.
func (f *Flaky) InjectedFaults() (transient, outage CallCounts) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injTransient, f.injOutage
}

// Name implements cloud.Interface.
func (f *Flaky) Name() string { return f.inner.Name() }

// Upload implements cloud.Interface. A successful upload replaces the
// stored object, so it clears any at-rest corruption mark on the path
// — the repair write path of the scrubber.
func (f *Flaky) Upload(ctx context.Context, path string, data []byte) error {
	if err := f.fail(ctx, "upload", func(c *CallCounts) { c.Upload++ }); err != nil {
		return err
	}
	if err := f.inner.Upload(ctx, path, data); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.corrupted, path)
	f.mu.Unlock()
	return nil
}

// Download implements cloud.Interface. Paths marked with CorruptPath
// are served damaged.
func (f *Flaky) Download(ctx context.Context, path string) ([]byte, error) {
	if err := f.fail(ctx, "download", func(c *CallCounts) { c.Download++ }); err != nil {
		return nil, err
	}
	data, err := f.inner.Download(ctx, path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	mode, rotten := f.corrupted[path]
	if rotten {
		f.corruptServes++
	}
	seed := pathSeed(f.seed, path)
	f.mu.Unlock()
	if rotten {
		data = corruptBytes(data, mode, seed)
	}
	return data, nil
}

// CreateDir implements cloud.Interface.
func (f *Flaky) CreateDir(ctx context.Context, path string) error {
	if err := f.fail(ctx, "createdir", func(c *CallCounts) { c.CreateDir++ }); err != nil {
		return err
	}
	return f.inner.CreateDir(ctx, path)
}

// List implements cloud.Interface.
func (f *Flaky) List(ctx context.Context, path string) ([]cloud.Entry, error) {
	if err := f.fail(ctx, "list", func(c *CallCounts) { c.List++ }); err != nil {
		return nil, err
	}
	return f.inner.List(ctx, path)
}

// Delete implements cloud.Interface.
func (f *Flaky) Delete(ctx context.Context, path string) error {
	if err := f.fail(ctx, "delete", func(c *CallCounts) { c.Delete++ }); err != nil {
		return err
	}
	return f.inner.Delete(ctx, path)
}

// CallCounts tallies API calls per operation, recorded by Recorder.
type CallCounts struct {
	Upload, Download, CreateDir, List, Delete int
}

// Total returns the sum of all operation counts.
func (c CallCounts) Total() int {
	return c.Upload + c.Download + c.CreateDir + c.List + c.Delete
}

// Recorder wraps a cloud.Interface and counts calls and payload
// bytes; tests and the overhead accounting use it to verify protocol
// frugality (e.g. that the version-file fast path avoids metadata
// downloads).
type Recorder struct {
	inner cloud.Interface

	mu            sync.Mutex
	counts        CallCounts
	failures      CallCounts
	bytesUp       int64
	bytesDown     int64
	uploadedPaths []string
	uploadedSizes []int64
}

var _ cloud.Interface = (*Recorder)(nil)

// NewRecorder wraps inner with call accounting.
func NewRecorder(inner cloud.Interface) *Recorder {
	return &Recorder{inner: inner}
}

// Counts returns a snapshot of the per-operation call counts.
func (r *Recorder) Counts() CallCounts {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts
}

// Bytes returns the cumulative uploaded and downloaded payload bytes.
func (r *Recorder) Bytes() (up, down int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytesUp, r.bytesDown
}

// UploadedPaths returns the paths passed to Upload, in order.
func (r *Recorder) UploadedPaths() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.uploadedPaths...)
}

// PrefixUploadBytes returns the payload bytes uploaded to paths with
// the given prefix — the traffic-overhead experiments use it to
// separate data-plane payload from protocol traffic.
func (r *Recorder) PrefixUploadBytes(prefix string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for i, p := range r.uploadedPaths {
		if strings.HasPrefix(p, prefix) {
			total += r.uploadedSizes[i]
		}
	}
	return total
}

// FailureCounts returns per-operation counts of failed calls
// (transient or outage errors from the wrapped cloud).
func (r *Recorder) FailureCounts() CallCounts {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failures
}

// Name implements cloud.Interface.
func (r *Recorder) Name() string { return r.inner.Name() }

// noteFailure counts network-class errors for availability stats.
func (r *Recorder) noteFailure(err error, bump func(*CallCounts)) {
	if err == nil {
		return
	}
	if errors.Is(err, cloud.ErrTransient) || errors.Is(err, cloud.ErrUnavailable) {
		r.mu.Lock()
		bump(&r.failures)
		r.mu.Unlock()
	}
}

// Upload implements cloud.Interface. Payload bytes and paths are
// recorded only for successful uploads, so retried attempts do not
// inflate the payload accounting.
func (r *Recorder) Upload(ctx context.Context, path string, data []byte) error {
	r.mu.Lock()
	r.counts.Upload++
	r.mu.Unlock()
	err := r.inner.Upload(ctx, path, data)
	if err == nil {
		r.mu.Lock()
		r.bytesUp += int64(len(data))
		r.uploadedPaths = append(r.uploadedPaths, path)
		r.uploadedSizes = append(r.uploadedSizes, int64(len(data)))
		r.mu.Unlock()
	}
	r.noteFailure(err, func(c *CallCounts) { c.Upload++ })
	return err
}

// Download implements cloud.Interface.
func (r *Recorder) Download(ctx context.Context, path string) ([]byte, error) {
	r.mu.Lock()
	r.counts.Download++
	r.mu.Unlock()
	data, err := r.inner.Download(ctx, path)
	if err == nil {
		r.mu.Lock()
		r.bytesDown += int64(len(data))
		r.mu.Unlock()
	}
	r.noteFailure(err, func(c *CallCounts) { c.Download++ })
	return data, err
}

// CreateDir implements cloud.Interface.
func (r *Recorder) CreateDir(ctx context.Context, path string) error {
	r.mu.Lock()
	r.counts.CreateDir++
	r.mu.Unlock()
	return r.inner.CreateDir(ctx, path)
}

// List implements cloud.Interface.
func (r *Recorder) List(ctx context.Context, path string) ([]cloud.Entry, error) {
	r.mu.Lock()
	r.counts.List++
	r.mu.Unlock()
	return r.inner.List(ctx, path)
}

// Delete implements cloud.Interface.
func (r *Recorder) Delete(ctx context.Context, path string) error {
	r.mu.Lock()
	r.counts.Delete++
	r.mu.Unlock()
	return r.inner.Delete(ctx, path)
}
