// Package cloudsim provides an in-process consumer cloud storage
// service used as the substrate for all experiments and tests.
//
// A Store is the provider-side state: a flat namespace of files and
// directories with quota accounting and read-after-write (in fact
// linearizable) list consistency — a superset of the only consistency
// guarantee UniDrive's protocols assume (paper §5.2).
//
// Clients bind a Store to a vantage point:
//
//   - Client routes every call through a netsim.Host, so transfers
//     cost simulated time and can fail transiently, exactly like the
//     commercial Web APIs the paper measures.
//   - Direct performs calls instantly; unit tests of the protocol
//     layers use it when network shaping is irrelevant.
//
// Decorators (Flaky, Recorder) inject faults and observe traffic for
// tests.
package cloudsim

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"unidrive/internal/cloud"
	"unidrive/internal/netsim"
)

// Store is the provider-side state of one simulated cloud. It is safe
// for concurrent use by any number of clients.
type Store struct {
	name string

	mu    sync.RWMutex
	quota int64
	// quotaRejections counts every upload the quota check refused, so
	// chaos tests can reconcile provider-side rejections one-for-one
	// against client-side capacity-tracker observations.
	quotaRejections int64
	files           map[string]storedFile
	dirs            map[string]bool
	// children indexes the direct child names of every directory (""
	// is the root), so list and subtree remove touch only the entries
	// under the requested path instead of scanning the whole store —
	// matching real providers, whose per-directory API calls do not
	// slow down as the rest of the account grows.
	children map[string]map[string]bool
	used     int64
	now      func() time.Time
}

type storedFile struct {
	data    []byte
	modTime time.Time
}

// NewStore creates a cloud backend with the given provider name and
// storage quota in bytes. A non-positive quota means unlimited.
func NewStore(name string, quota int64) *Store {
	return &Store{
		name:     name,
		quota:    quota,
		files:    make(map[string]storedFile),
		dirs:     make(map[string]bool),
		children: make(map[string]map[string]bool),
		now:      time.Now,
	}
}

// Name returns the provider name.
func (s *Store) Name() string { return s.name }

// Used reports the bytes currently consumed against the quota.
func (s *Store) Used() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}

// Quota returns the current storage quota in bytes (non-positive
// means unlimited).
func (s *Store) Quota() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.quota
}

// SetQuota changes the storage quota at runtime — chaos tests shrink
// it mid-workload to exhaust a cloud and grow it back to model the
// user reclaiming space. Shrinking below the current usage does not
// delete anything: existing bytes stay, but every further upload that
// would grow usage is rejected, exactly like a real provider whose
// plan lapsed.
func (s *Store) SetQuota(quota int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quota = quota
}

// QuotaRejections reports how many uploads the quota check has
// refused since the store was created.
func (s *Store) QuotaRejections() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.quotaRejections
}

// FileCount reports the number of stored files.
func (s *Store) FileCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}

// Paths returns every stored file path, sorted — the omniscient view
// crash-recovery tests use to audit that no unreferenced block
// survives anywhere, bypassing the cloud.Interface a client would be
// limited to.
func (s *Store) Paths() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.files))
	for p := range s.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// put stores data at path, enforcing the quota.
func (s *Store) put(path string, data []byte) error {
	if err := cloud.ValidatePath(path); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delta := int64(len(data))
	if old, ok := s.files[path]; ok {
		delta -= int64(len(old.data))
	}
	if s.quota > 0 && s.used+delta > s.quota {
		s.quotaRejections++
		return fmt.Errorf("cloudsim: %s uploading %d bytes to %q: %w",
			s.name, len(data), path, cloud.ErrQuotaExceeded)
	}
	s.files[path] = storedFile{data: append([]byte(nil), data...), modTime: s.now()}
	s.used += delta
	s.link(path)
	// Parent directories exist implicitly.
	for dir, _ := cloud.SplitPath(path); dir != ""; dir, _ = cloud.SplitPath(dir) {
		s.dirs[dir] = true
	}
	return nil
}

// link records path and all its ancestors in the children index.
// Caller holds mu.
func (s *Store) link(path string) {
	for p := path; p != ""; {
		dir, name := cloud.SplitPath(p)
		m := s.children[dir]
		if m == nil {
			m = make(map[string]bool)
			s.children[dir] = m
		}
		if m[name] {
			return // ancestors already linked
		}
		m[name] = true
		p = dir
	}
}

// get returns a copy of the file at path.
func (s *Store) get(path string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("cloudsim: %s has no file %q: %w", s.name, path, cloud.ErrNotFound)
	}
	return append([]byte(nil), f.data...), nil
}

// size returns the size of the file at path, used to shape download
// transfers before moving the bytes.
func (s *Store) size(path string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.files[path]
	if !ok {
		return 0, fmt.Errorf("cloudsim: %s has no file %q: %w", s.name, path, cloud.ErrNotFound)
	}
	return int64(len(f.data)), nil
}

func (s *Store) mkdir(path string) error {
	if err := cloud.ValidatePath(path); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for p := path; p != ""; p, _ = cloud.SplitPath(p) {
		s.dirs[p] = true
	}
	s.link(path)
	return nil
}

// list returns the direct children of dir (dir may be "" for the
// root). Listing a missing directory returns an empty slice.
func (s *Store) list(dir string) ([]cloud.Entry, error) {
	if dir != "" {
		if err := cloud.ValidatePath(dir); err != nil {
			return nil, err
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]cloud.Entry, 0, len(s.children[dir]))
	for name := range s.children[dir] {
		child := name
		if dir != "" {
			child = dir + "/" + name
		}
		if len(s.children[child]) > 0 || s.dirs[child] {
			out = append(out, cloud.Entry{Name: name, IsDir: true})
		} else if f, ok := s.files[child]; ok {
			out = append(out, cloud.Entry{Name: name, Size: int64(len(f.data)), ModTime: f.modTime})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// remove deletes the file or directory subtree at path. Missing paths
// are not an error.
func (s *Store) remove(path string) error {
	if err := cloud.ValidatePath(path); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeSubtree(path)
	dir, name := cloud.SplitPath(path)
	if m := s.children[dir]; m != nil {
		delete(m, name)
		if len(m) == 0 && dir != "" {
			delete(s.children, dir)
		}
	}
	return nil
}

// removeSubtree deletes path and everything under it, walking the
// children index. Caller holds mu.
func (s *Store) removeSubtree(path string) {
	if f, ok := s.files[path]; ok {
		s.used -= int64(len(f.data))
		delete(s.files, path)
	}
	delete(s.dirs, path)
	for name := range s.children[path] {
		s.removeSubtree(path + "/" + name)
	}
	delete(s.children, path)
}

// listSize estimates the response payload of a List call, used to
// shape and meter the request. Roughly the JSON encoding cost.
func (s *Store) listSize(dir string) int64 {
	entries, err := s.list(dir)
	if err != nil {
		return 0
	}
	var n int64
	for _, e := range entries {
		n += int64(len(e.Name)) + 64
	}
	return n
}

// Client is a cloud.Interface whose calls are shaped by a
// netsim.Host: every request pays API latency, transfers at the
// modeled bandwidth, and may fail transiently. One Client corresponds
// to one device's connector to one cloud (the paper's "storage cloud
// object").
type Client struct {
	store *Store
	host  *netsim.Host
}

var _ cloud.Interface = (*Client)(nil)

// NewClient binds store to the vantage point host.
func NewClient(store *Store, host *netsim.Host) *Client {
	return &Client{store: store, host: host}
}

// Name returns the provider name.
func (c *Client) Name() string { return c.store.Name() }

// Host returns the netsim host used by this client, exposing its
// traffic meters to the overhead experiments.
func (c *Client) Host() *netsim.Host { return c.host }

// Upload implements cloud.Interface.
func (c *Client) Upload(ctx context.Context, path string, data []byte) error {
	if err := cloud.ValidatePath(path); err != nil {
		return err
	}
	if err := c.host.Do(ctx, c.store.Name(), netsim.Upload, int64(len(data))); err != nil {
		return fmt.Errorf("upload %q: %w", path, err)
	}
	return c.store.put(path, data)
}

// Download implements cloud.Interface.
func (c *Client) Download(ctx context.Context, path string) ([]byte, error) {
	size, err := c.store.size(path)
	if err != nil {
		// Even a 404 costs a round trip.
		if doErr := c.host.Do(ctx, c.store.Name(), netsim.Download, 0); doErr != nil {
			return nil, fmt.Errorf("download %q: %w", path, doErr)
		}
		return nil, err
	}
	if err := c.host.Do(ctx, c.store.Name(), netsim.Download, size); err != nil {
		return nil, fmt.Errorf("download %q: %w", path, err)
	}
	return c.store.get(path)
}

// CreateDir implements cloud.Interface.
func (c *Client) CreateDir(ctx context.Context, path string) error {
	if err := c.host.Do(ctx, c.store.Name(), netsim.Upload, 0); err != nil {
		return fmt.Errorf("createdir %q: %w", path, err)
	}
	return c.store.mkdir(path)
}

// List implements cloud.Interface.
func (c *Client) List(ctx context.Context, path string) ([]cloud.Entry, error) {
	if err := c.host.Do(ctx, c.store.Name(), netsim.Download, c.store.listSize(path)); err != nil {
		return nil, fmt.Errorf("list %q: %w", path, err)
	}
	return c.store.list(path)
}

// Delete implements cloud.Interface.
func (c *Client) Delete(ctx context.Context, path string) error {
	if err := c.host.Do(ctx, c.store.Name(), netsim.Upload, 0); err != nil {
		return fmt.Errorf("delete %q: %w", path, err)
	}
	return c.store.remove(path)
}

// Direct is a cloud.Interface that performs Store operations
// instantly, with no network model. Protocol-layer unit tests use it
// for speed and determinism.
type Direct struct {
	store *Store
}

var _ cloud.Interface = (*Direct)(nil)

// NewDirect returns an unshaped client for store.
func NewDirect(store *Store) *Direct { return &Direct{store: store} }

// Name returns the provider name.
func (d *Direct) Name() string { return d.store.Name() }

// Upload implements cloud.Interface.
func (d *Direct) Upload(_ context.Context, path string, data []byte) error {
	return d.store.put(path, data)
}

// Download implements cloud.Interface.
func (d *Direct) Download(_ context.Context, path string) ([]byte, error) {
	return d.store.get(path)
}

// CreateDir implements cloud.Interface.
func (d *Direct) CreateDir(_ context.Context, path string) error {
	return d.store.mkdir(path)
}

// List implements cloud.Interface.
func (d *Direct) List(_ context.Context, path string) ([]cloud.Entry, error) {
	return d.store.list(path)
}

// Delete implements cloud.Interface.
func (d *Direct) Delete(_ context.Context, path string) error {
	return d.store.remove(path)
}
