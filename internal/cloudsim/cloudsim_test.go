package cloudsim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"unidrive/internal/cloud"
	"unidrive/internal/netsim"
	"unidrive/internal/vclock"
)

func ctxb() context.Context { return context.Background() }

func TestStorePutGetRoundTrip(t *testing.T) {
	s := NewStore("c1", 0)
	d := NewDirect(s)
	if err := d.Upload(ctxb(), "a/b/file.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Download(ctxb(), "a/b/file.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q, want hello", got)
	}
}

func TestDownloadMissingIsNotFound(t *testing.T) {
	d := NewDirect(NewStore("c1", 0))
	_, err := d.Download(ctxb(), "nope")
	if !errors.Is(err, cloud.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestUploadOverwrites(t *testing.T) {
	s := NewStore("c1", 0)
	d := NewDirect(s)
	must(t, d.Upload(ctxb(), "f", []byte("v1")))
	must(t, d.Upload(ctxb(), "f", []byte("longer-v2")))
	got, err := d.Download(ctxb(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "longer-v2" {
		t.Fatalf("got %q", got)
	}
	if s.Used() != int64(len("longer-v2")) {
		t.Fatalf("Used = %d after overwrite, want %d", s.Used(), len("longer-v2"))
	}
}

func TestQuotaEnforced(t *testing.T) {
	d := NewDirect(NewStore("c1", 10))
	must(t, d.Upload(ctxb(), "a", make([]byte, 8)))
	err := d.Upload(ctxb(), "b", make([]byte, 4))
	if !errors.Is(err, cloud.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	// Overwriting within quota is fine: delta accounting.
	must(t, d.Upload(ctxb(), "a", make([]byte, 10)))
}

func TestQuotaReleasedOnDelete(t *testing.T) {
	s := NewStore("c1", 10)
	d := NewDirect(s)
	must(t, d.Upload(ctxb(), "a", make([]byte, 10)))
	must(t, d.Delete(ctxb(), "a"))
	if s.Used() != 0 {
		t.Fatalf("Used = %d after delete, want 0", s.Used())
	}
	must(t, d.Upload(ctxb(), "b", make([]byte, 10)))
}

func TestListDirectChildrenOnly(t *testing.T) {
	d := NewDirect(NewStore("c1", 0))
	must(t, d.Upload(ctxb(), "dir/f1", []byte("1")))
	must(t, d.Upload(ctxb(), "dir/f2", []byte("22")))
	must(t, d.Upload(ctxb(), "dir/sub/f3", []byte("333")))
	must(t, d.Upload(ctxb(), "other/f4", []byte("4")))
	entries, err := d.List(ctxb(), "dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("List(dir) = %d entries (%v), want 3", len(entries), entries)
	}
	// Sorted: f1, f2, sub.
	if entries[0].Name != "f1" || entries[1].Name != "f2" || entries[2].Name != "sub" {
		t.Fatalf("entries = %v", entries)
	}
	if !entries[2].IsDir {
		t.Fatal("sub should be a directory")
	}
	if entries[1].Size != 2 {
		t.Fatalf("f2 size = %d, want 2", entries[1].Size)
	}
}

func TestListRoot(t *testing.T) {
	d := NewDirect(NewStore("c1", 0))
	must(t, d.Upload(ctxb(), "top.txt", []byte("x")))
	must(t, d.Upload(ctxb(), "dir/nested", []byte("y")))
	entries, err := d.List(ctxb(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("List(root) = %v, want [dir top.txt]", entries)
	}
}

func TestListMissingDirIsEmpty(t *testing.T) {
	d := NewDirect(NewStore("c1", 0))
	entries, err := d.List(ctxb(), "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("List(ghost) = %v, want empty", entries)
	}
}

func TestCreateDirVisibleInList(t *testing.T) {
	d := NewDirect(NewStore("c1", 0))
	must(t, d.CreateDir(ctxb(), "a/b/c"))
	entries, err := d.List(ctxb(), "a/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "c" || !entries[0].IsDir {
		t.Fatalf("List(a/b) = %v", entries)
	}
	// Parents exist too.
	entries, _ = d.List(ctxb(), "")
	if len(entries) != 1 || entries[0].Name != "a" {
		t.Fatalf("List(root) = %v", entries)
	}
	// Idempotent.
	must(t, d.CreateDir(ctxb(), "a/b/c"))
}

func TestDeleteRecursive(t *testing.T) {
	s := NewStore("c1", 0)
	d := NewDirect(s)
	must(t, d.Upload(ctxb(), "dir/f1", []byte("1")))
	must(t, d.Upload(ctxb(), "dir/sub/f2", []byte("22")))
	must(t, d.Upload(ctxb(), "keep", []byte("k")))
	must(t, d.Delete(ctxb(), "dir"))
	if _, err := d.Download(ctxb(), "dir/f1"); !errors.Is(err, cloud.ErrNotFound) {
		t.Fatal("dir/f1 survived recursive delete")
	}
	if _, err := d.Download(ctxb(), "dir/sub/f2"); !errors.Is(err, cloud.ErrNotFound) {
		t.Fatal("dir/sub/f2 survived recursive delete")
	}
	if _, err := d.Download(ctxb(), "keep"); err != nil {
		t.Fatal("unrelated file deleted")
	}
	if s.Used() != 1 {
		t.Fatalf("Used = %d, want 1", s.Used())
	}
}

func TestDeleteMissingIsNoError(t *testing.T) {
	d := NewDirect(NewStore("c1", 0))
	if err := d.Delete(ctxb(), "ghost"); err != nil {
		t.Fatalf("deleting missing path: %v", err)
	}
}

func TestReadAfterWriteConsistency(t *testing.T) {
	// Once Upload returns, List must observe the file — the one
	// consistency property the locking protocol depends on.
	d := NewDirect(NewStore("c1", 0))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("locks/lock_%d", i)
			if err := d.Upload(ctxb(), path, nil); err != nil {
				t.Errorf("upload: %v", err)
				return
			}
			entries, err := d.List(ctxb(), "locks")
			if err != nil {
				t.Errorf("list: %v", err)
				return
			}
			for _, e := range entries {
				if e.Name == fmt.Sprintf("lock_%d", i) {
					return
				}
			}
			t.Errorf("read-after-write violated for %s", path)
		}(i)
	}
	wg.Wait()
}

func TestConcurrentUploadsDistinctPaths(t *testing.T) {
	s := NewStore("c1", 0)
	d := NewDirect(s)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("d/%d", i)
			if err := d.Upload(ctxb(), path, []byte{byte(i)}); err != nil {
				t.Errorf("upload %s: %v", path, err)
			}
		}(i)
	}
	wg.Wait()
	if s.FileCount() != 32 {
		t.Fatalf("FileCount = %d, want 32", s.FileCount())
	}
}

func TestClientShapedBySimulatedNetwork(t *testing.T) {
	// A modest scale factor keeps real compute time (the 1 MB copy)
	// from inflating simulated time on slow machines.
	clk := vclock.NewScaled(500)
	cfg := netsim.DefaultConfig(1)
	cfg.DegradedProb = 0
	env := netsim.NewEnv(clk, cfg, []netsim.CloudProfile{{
		Name: "c1", UpMbps: 8, DownMbps: 8, PerConnMbps: 8, Sigma: 0.0001,
	}})
	host := env.NewHost(netsim.LocationProfile{Name: "here", UplinkMbps: 1000, DownlinkMbps: 1000})
	c := NewClient(NewStore("c1", 0), host)

	data := make([]byte, 1<<20) // 1 MB at 8 Mbps ≈ 1 simulated second
	start := clk.Now()
	must(t, c.Upload(ctxb(), "big", data))
	elapsed := clk.Now().Sub(start)
	if elapsed < 500e6 || elapsed > 5e9 { // 0.5s .. 5s
		t.Fatalf("1MB upload took %v simulated; want ~1s", elapsed)
	}
	got, err := c.Download(ctxb(), "big")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("downloaded %d bytes, want %d", len(got), len(data))
	}
	if c.Name() != "c1" {
		t.Fatal("client name mismatch")
	}
	up, down, _ := c.Host().Traffic()
	if up < 1<<20 || down < 1<<20 {
		t.Fatalf("traffic not metered: up=%d down=%d", up, down)
	}
}

func TestClientOutagePropagates(t *testing.T) {
	clk := vclock.NewScaled(5000)
	env := netsim.NewEnv(clk, netsim.DefaultConfig(1), netsim.FiveClouds())
	host := env.NewHost(netsim.EC2Location("virginia"))
	c := NewClient(NewStore(netsim.Dropbox, 0), host)
	env.SetOutage(netsim.Dropbox, true)
	err := c.Upload(ctxb(), "f", []byte("x"))
	if !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if _, err := c.List(ctxb(), ""); !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("List err = %v, want ErrUnavailable", err)
	}
}

func TestFlakyFailsWithInjectedProbability(t *testing.T) {
	f := NewFlaky(NewDirect(NewStore("c1", 0)), 1.0, 1)
	if err := f.Upload(ctxb(), "f", nil); !errors.Is(err, cloud.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient at prob 1", err)
	}
	ok := NewFlaky(NewDirect(NewStore("c1", 0)), 0, 1)
	if err := ok.Upload(ctxb(), "f", nil); err != nil {
		t.Fatalf("err = %v at prob 0", err)
	}
}

func TestFlakySetDown(t *testing.T) {
	f := NewFlaky(NewDirect(NewStore("c1", 0)), 0, 1)
	f.SetDown(true)
	if _, err := f.List(ctxb(), ""); !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable when down", err)
	}
	f.SetDown(false)
	if _, err := f.List(ctxb(), ""); err != nil {
		t.Fatalf("err = %v after recovery", err)
	}
}

func TestRecorderCountsAndBytes(t *testing.T) {
	r := NewRecorder(NewDirect(NewStore("c1", 0)))
	must(t, r.Upload(ctxb(), "a", []byte("12345")))
	must(t, r.CreateDir(ctxb(), "d"))
	if _, err := r.Download(ctxb(), "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.List(ctxb(), ""); err != nil {
		t.Fatal(err)
	}
	must(t, r.Delete(ctxb(), "a"))
	c := r.Counts()
	want := CallCounts{Upload: 1, Download: 1, CreateDir: 1, List: 1, Delete: 1}
	if c != want {
		t.Fatalf("Counts = %+v, want %+v", c, want)
	}
	if c.Total() != 5 {
		t.Fatalf("Total = %d, want 5", c.Total())
	}
	up, down := r.Bytes()
	if up != 5 || down != 5 {
		t.Fatalf("Bytes = (%d, %d), want (5, 5)", up, down)
	}
	if paths := r.UploadedPaths(); len(paths) != 1 || paths[0] != "a" {
		t.Fatalf("UploadedPaths = %v", paths)
	}
}

func TestInvalidPathsRejected(t *testing.T) {
	d := NewDirect(NewStore("c1", 0))
	if err := d.Upload(ctxb(), "/abs", nil); err == nil {
		t.Fatal("absolute path accepted")
	}
	if err := d.Upload(ctxb(), "a/../b", nil); err == nil {
		t.Fatal("dot-dot path accepted")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
