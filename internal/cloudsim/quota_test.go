package cloudsim

import (
	"context"
	"errors"
	"testing"

	"unidrive/internal/cloud"
)

func TestSetQuotaShrinkRejectsGrowKeepsData(t *testing.T) {
	s := NewStore("c0", 0)
	d := NewDirect(s)
	ctx := context.Background()
	if err := d.Upload(ctx, "a", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	// Shrink below current usage: existing data stays readable, new
	// uploads are rejected and counted.
	s.SetQuota(50)
	if got := s.Quota(); got != 50 {
		t.Fatalf("Quota() = %d, want 50", got)
	}
	err := d.Upload(ctx, "b", []byte("x"))
	if !errors.Is(err, cloud.ErrQuotaExceeded) {
		t.Fatalf("upload after shrink err = %v, want ErrQuotaExceeded", err)
	}
	if data, err := d.Download(ctx, "a"); err != nil || len(data) != 100 {
		t.Fatalf("existing data after shrink: len=%d err=%v", len(data), err)
	}
	if got := s.QuotaRejections(); got != 1 {
		t.Fatalf("QuotaRejections = %d, want 1", got)
	}
	// Overwriting an existing file with a SMALLER version shrinks usage
	// and must be allowed even while over quota.
	if err := d.Upload(ctx, "a", make([]byte, 40)); err != nil {
		t.Fatalf("shrinking overwrite rejected: %v", err)
	}
	// Grow the quota back: uploads flow again, rejection count sticks.
	s.SetQuota(0)
	if err := d.Upload(ctx, "b", []byte("x")); err != nil {
		t.Fatalf("upload after grow: %v", err)
	}
	if got := s.QuotaRejections(); got != 1 {
		t.Fatalf("QuotaRejections after grow = %d, want 1", got)
	}
}

func TestFlakySetQuotaFull(t *testing.T) {
	f := NewFlaky(NewDirect(NewStore("c0", 0)), 0, 1)
	ctx := context.Background()
	if err := f.Upload(ctx, "a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f.SetQuotaFull(true)
	for i := 0; i < 3; i++ {
		if err := f.Upload(ctx, "b", []byte("y")); !errors.Is(err, cloud.ErrQuotaExceeded) {
			t.Fatalf("upload %d err = %v, want ErrQuotaExceeded", i, err)
		}
	}
	// A full cloud is not a dead cloud: reads, lists and deletes work.
	if data, err := f.Download(ctx, "a"); err != nil || string(data) != "x" {
		t.Fatalf("download while quota-full: %q, %v", data, err)
	}
	if _, err := f.List(ctx, ""); err != nil {
		t.Fatalf("list while quota-full: %v", err)
	}
	if err := f.Delete(ctx, "a"); err != nil {
		t.Fatalf("delete while quota-full: %v", err)
	}
	if got := f.InjectedQuota(); got != 3 {
		t.Fatalf("InjectedQuota = %d, want 3", got)
	}
	f.SetQuotaFull(false)
	if err := f.Upload(ctx, "b", []byte("y")); err != nil {
		t.Fatalf("upload after quota restore: %v", err)
	}
	if got := f.InjectedQuota(); got != 3 {
		t.Fatalf("InjectedQuota after restore = %d, want 3 still", got)
	}
}

func TestFlakyQuotaWindowExactAccounting(t *testing.T) {
	f := NewFlaky(NewDirect(NewStore("c0", 0)), 0, 1)
	ctx := context.Background()
	// Ops 0..5: upload, download, upload, upload, download, upload.
	// Window [2, 5): op 2 (upload) and op 3 (upload) are rejected; op 4
	// is a download and sails through — quota never fails reads.
	f.AddQuotaWindow(2, 5)
	if err := f.Upload(ctx, "a", []byte("x")); err != nil { // op 0
		t.Fatal(err)
	}
	if _, err := f.Download(ctx, "a"); err != nil { // op 1
		t.Fatal(err)
	}
	if err := f.Upload(ctx, "b", []byte("y")); !errors.Is(err, cloud.ErrQuotaExceeded) { // op 2
		t.Fatalf("op 2 err = %v, want ErrQuotaExceeded", err)
	}
	if err := f.Upload(ctx, "b", []byte("y")); !errors.Is(err, cloud.ErrQuotaExceeded) { // op 3
		t.Fatalf("op 3 err = %v, want ErrQuotaExceeded", err)
	}
	if _, err := f.Download(ctx, "a"); err != nil { // op 4: in-window read
		t.Fatalf("in-window download err = %v, want nil", err)
	}
	if err := f.Upload(ctx, "b", []byte("y")); err != nil { // op 5: window closed
		t.Fatalf("op 5 err = %v, want nil", err)
	}
	if got := f.InjectedQuota(); got != 2 {
		t.Fatalf("InjectedQuota = %d, want exactly 2", got)
	}
	transient, outage := f.InjectedFaults()
	if transient.Total() != 0 || outage.Total() != 0 {
		t.Fatalf("quota window leaked other faults: transient=%+v outage=%+v", transient, outage)
	}
}

func TestFlakyOutageBeatsQuota(t *testing.T) {
	// A down cloud reports unavailability, not quota: the two fault
	// axes stay distinguishable for the layers above.
	f := NewFlaky(NewDirect(NewStore("c0", 0)), 0, 1)
	f.SetQuotaFull(true)
	f.SetDown(true)
	err := f.Upload(context.Background(), "a", []byte("x"))
	if !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if got := f.InjectedQuota(); got != 0 {
		t.Fatalf("InjectedQuota = %d, want 0 while down", got)
	}
	f.SetDown(false)
	err = f.Upload(context.Background(), "a", []byte("x"))
	if !errors.Is(err, cloud.ErrQuotaExceeded) {
		t.Fatalf("err after outage = %v, want ErrQuotaExceeded", err)
	}
}
