package obs

import (
	"context"
	"testing"
	"time"

	"unidrive/internal/cloud"
	"unidrive/internal/vclock"
)

// fakeCloud scripts one error per op and lets each call advance a
// Manual clock, so instrument latencies are exact.
type fakeCloud struct {
	name    string
	err     error
	clock   *vclock.Manual
	latency time.Duration
	data    []byte
}

var _ cloud.Interface = (*fakeCloud)(nil)

func (f *fakeCloud) Name() string { return f.name }

func (f *fakeCloud) call() error {
	if f.clock != nil && f.latency > 0 {
		f.clock.Advance(f.latency)
	}
	return f.err
}

func (f *fakeCloud) Upload(ctx context.Context, path string, data []byte) error {
	return f.call()
}

func (f *fakeCloud) Download(ctx context.Context, path string) ([]byte, error) {
	if err := f.call(); err != nil {
		return nil, err
	}
	return f.data, nil
}

func (f *fakeCloud) CreateDir(ctx context.Context, path string) error { return f.call() }

func (f *fakeCloud) List(ctx context.Context, path string) ([]cloud.Entry, error) {
	return nil, f.call()
}

func (f *fakeCloud) Delete(ctx context.Context, path string) error { return f.call() }

func TestInstrumentRecordsAllOps(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	fc := &fakeCloud{name: "dropbox", clock: clock, latency: 20 * time.Millisecond, data: []byte("abcd")}
	r := NewRegistry()
	in := Instrument(fc, r, clock)
	ctx := context.Background()

	if in.Name() != "dropbox" {
		t.Fatalf("Name = %q", in.Name())
	}
	if in.Unwrap() != cloud.Interface(fc) {
		t.Fatal("Unwrap lost the inner cloud")
	}

	if err := in.Upload(ctx, "f", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Download(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	if err := in.CreateDir(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.List(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if err := in.Delete(ctx, "f"); err != nil {
		t.Fatal(err)
	}

	s := r.Snapshot()
	for _, op := range []string{OpUpload, OpDownload, OpCreateDir, OpList, OpDelete} {
		row, ok := s.Op("dropbox", op)
		if !ok {
			t.Fatalf("no row for %s", op)
		}
		if row.Outcome(OK) != 1 || row.Calls() != 1 {
			t.Fatalf("%s row = %+v", op, row)
		}
		// Each call advanced the manual clock by exactly 20 ms.
		if got := row.Latency.P50; got < 0.01 || got > 0.025 {
			t.Fatalf("%s p50 = %v, want ~0.02", op, got)
		}
	}
	up, _ := s.Op("dropbox", OpUpload)
	if up.BytesUp != 5 || up.BytesDown != 0 {
		t.Fatalf("upload bytes = %d/%d", up.BytesUp, up.BytesDown)
	}
	down, _ := s.Op("dropbox", OpDownload)
	if down.BytesDown != 4 || down.BytesUp != 0 {
		t.Fatalf("download bytes = %d/%d", down.BytesUp, down.BytesDown)
	}
}

func TestInstrumentClassifiesErrors(t *testing.T) {
	fc := &fakeCloud{name: "box", err: cloud.ErrTransient}
	r := NewRegistry()
	in := Instrument(fc, r, nil) // nil clock falls back to the real one
	ctx := context.Background()

	if err := in.Upload(ctx, "f", []byte("xyz")); err == nil {
		t.Fatal("expected error")
	}
	fc.err = cloud.ErrUnavailable
	if _, err := in.Download(ctx, "f"); err == nil {
		t.Fatal("expected error")
	}

	s := r.Snapshot()
	row, _ := s.Op("box", OpUpload)
	if row.Outcome(Transient) != 1 || row.Outcome(OK) != 0 {
		t.Fatalf("upload row = %+v", row)
	}
	// Failed uploads record no payload bytes.
	if row.BytesUp != 0 {
		t.Fatalf("failed upload counted %d bytes", row.BytesUp)
	}
	row, _ = s.Op("box", OpDownload)
	if row.Outcome(Unavailable) != 1 {
		t.Fatalf("download row = %+v", row)
	}
	if got := s.OutcomeTotal("box", Transient); got != 1 {
		t.Fatalf("OutcomeTotal transient = %d", got)
	}
}

func TestInstrumentNilRegistry(t *testing.T) {
	fc := &fakeCloud{name: "c", data: []byte("ok")}
	in := Instrument(fc, nil, nil)
	if err := in.Upload(context.Background(), "f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Download(context.Background(), "f"); err != nil {
		t.Fatal(err)
	}
}
