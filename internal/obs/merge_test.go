package obs

import (
	"math/rand"
	"testing"
	"time"
)

// TestMergeHistogramEqualsUnion: merging two snapshotted histograms
// must give exactly the snapshot of one histogram that observed the
// union of the samples — the property that makes fleet-level p99s
// trustworthy.
func TestMergeHistogramEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, union := NewRegistry(), NewRegistry(), NewRegistry()
	for i := 0; i < 5000; i++ {
		v := rng.ExpFloat64() * 0.3
		if i%3 == 0 {
			a.Histogram("lat").Observe(v)
		} else {
			b.Histogram("lat").Observe(v)
		}
		union.Histogram("lat").Observe(v)
	}
	merged := MergeSnapshots(a.Snapshot(), b.Snapshot()).Histograms["lat"]
	want := union.Snapshot().Histograms["lat"]
	if merged.Count != want.Count {
		t.Fatalf("count: merged=%v want=%v", merged.Count, want.Count)
	}
	// Sums accumulate in different orders, so allow float rounding.
	if diff := merged.Sum - want.Sum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum: merged=%v want=%v", merged.Sum, want.Sum)
	}
	if merged.P50 != want.P50 || merged.P95 != want.P95 || merged.P99 != want.P99 {
		t.Fatalf("quantiles: merged=%v/%v/%v want=%v/%v/%v",
			merged.P50, merged.P95, merged.P99, want.P50, want.P95, want.P99)
	}
	for i := range want.Buckets {
		if merged.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: merged=%d want=%d", i, merged.Buckets[i], want.Buckets[i])
		}
	}
}

func TestMergeSnapshotsTotals(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("syncs").Add(3)
	r2.Counter("syncs").Add(4)
	r2.Counter("only2").Inc()
	r1.Gauge("occupancy").Set(2)
	r2.Gauge("occupancy").Set(5)

	r1.Op("dropbox", OpUpload).Record(OK, 1000, 0, 100*time.Millisecond)
	r1.Op("dropbox", OpUpload).Record(Transient, 0, 0, 50*time.Millisecond)
	r2.Op("dropbox", OpUpload).Record(OK, 2000, 0, 200*time.Millisecond)
	r2.Op("gdrive", OpDownload).Record(OK, 0, 500, 10*time.Millisecond)

	m := MergeSnapshots(r1.Snapshot(), r2.Snapshot())
	if m.Counter("syncs") != 7 || m.Counter("only2") != 1 {
		t.Fatalf("counters: %v", m.Counters)
	}
	if m.Gauge("occupancy") != 7 {
		t.Fatalf("gauge sum = %v, want 7", m.Gauge("occupancy"))
	}
	row, ok := m.Op("dropbox", OpUpload)
	if !ok {
		t.Fatal("merged dropbox/put row missing")
	}
	if row.Outcome(OK) != 2 || row.Outcome(Transient) != 1 {
		t.Fatalf("outcomes: %v", row.Outcomes)
	}
	if row.BytesUp != 3000 {
		t.Fatalf("bytesUp = %d, want 3000", row.BytesUp)
	}
	if row.Latency.Count != 3 {
		t.Fatalf("latency count = %d, want 3", row.Latency.Count)
	}
	if got := m.OutcomeTotal("dropbox", Transient); got != 1 {
		t.Fatalf("OutcomeTotal = %d", got)
	}
	if len(m.Ops) != 2 || m.Ops[0].Cloud != "dropbox" || m.Ops[1].Cloud != "gdrive" {
		t.Fatalf("ops not sorted/merged: %+v", m.Ops)
	}
}

func TestMergeEmptyAndMismatched(t *testing.T) {
	if s := MergeSnapshots(); len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Ops) != 0 {
		t.Fatal("empty merge not empty")
	}
	// One side empty: result is the other side verbatim.
	r := NewRegistry()
	r.Histogram("h").Observe(0.02)
	m := MergeSnapshots(Snapshot{}, r.Snapshot())
	if m.Histograms["h"].Count != 1 || m.Histograms["h"].P50 == 0 {
		t.Fatalf("one-sided merge lost data: %+v", m.Histograms["h"])
	}
	// Bucket-less snapshots (e.g. unmarshalled from an old report)
	// still merge counts and sums.
	a := Snapshot{Histograms: map[string]HistogramSnapshot{"h": {Count: 2, Sum: 4, P50: 9}}}
	b := Snapshot{Histograms: map[string]HistogramSnapshot{"h": {Count: 3, Sum: 6}}}
	got := MergeSnapshots(a, b).Histograms["h"]
	if got.Count != 5 || got.Sum != 10 || got.Mean != 2 || got.P50 != 9 {
		t.Fatalf("degraded merge wrong: %+v", got)
	}
}
