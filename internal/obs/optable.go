package obs

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"unidrive/internal/cloud"
)

// Operation names used as the op dimension of the per-cloud table —
// one per Web API call of cloud.Interface.
const (
	OpUpload    = "upload"
	OpDownload  = "download"
	OpCreateDir = "createdir"
	OpList      = "list"
	OpDelete    = "delete"
)

// Outcome classifies how one Web API call ended. The interesting
// classes for scheduling and chaos accounting are Transient,
// Unavailable and Canceled; NotFound and Quota are protocol-level
// answers from a healthy cloud, kept separate from OK so error-path
// traffic is still visible.
type Outcome uint8

// Outcome values.
const (
	OK Outcome = iota
	NotFound
	Quota
	Transient
	Unavailable
	Canceled
	Other

	numOutcomes
)

var outcomeNames = [numOutcomes]string{
	"ok", "notfound", "quota", "transient", "unavailable", "canceled", "other",
}

// String names the outcome ("ok", "transient", ...).
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "other"
}

// Classify maps a Web API call error onto its Outcome. Cancellation
// is checked first: a call aborted by its context says nothing about
// the cloud, however the abort surfaced.
func Classify(err error) Outcome {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return Canceled
	case errors.Is(err, cloud.ErrUnavailable):
		return Unavailable
	case errors.Is(err, cloud.ErrTransient):
		return Transient
	case errors.Is(err, cloud.ErrNotFound):
		return NotFound
	case errors.Is(err, cloud.ErrQuotaExceeded):
		return Quota
	default:
		return Other
	}
}

// opKey identifies one row of the per-cloud operation table.
type opKey struct {
	cloud string
	op    string
}

// OpStats is one {cloud, op} row: outcome counts, payload bytes in
// both directions, and a latency histogram over all calls (successful
// or not — a slow failure occupies a connection just like a slow
// success).
type OpStats struct {
	outcomes  [numOutcomes]atomic.Int64
	bytesUp   atomic.Int64
	bytesDown atomic.Int64
	lat       *Histogram
}

func newOpStats() *OpStats {
	return &OpStats{lat: newHistogram(DefaultLatencyBuckets)}
}

// Record adds one finished call: its outcome, payload bytes moved up
// and down, and its latency.
func (s *OpStats) Record(o Outcome, bytesUp, bytesDown int64, d time.Duration) {
	if o >= numOutcomes {
		o = Other
	}
	s.outcomes[o].Add(1)
	if bytesUp > 0 {
		s.bytesUp.Add(bytesUp)
	}
	if bytesDown > 0 {
		s.bytesDown.Add(bytesDown)
	}
	s.lat.ObserveDuration(d)
}

// Count returns how many calls ended with the given outcome.
func (s *OpStats) Count(o Outcome) int64 {
	if o >= numOutcomes {
		return 0
	}
	return s.outcomes[o].Load()
}

// Calls returns the total number of recorded calls across outcomes.
func (s *OpStats) Calls() int64 {
	var n int64
	for i := range s.outcomes {
		n += s.outcomes[i].Load()
	}
	return n
}

// Bytes returns the cumulative payload bytes recorded up and down.
func (s *OpStats) Bytes() (up, down int64) {
	return s.bytesUp.Load(), s.bytesDown.Load()
}

// Latency returns the row's latency histogram.
func (s *OpStats) Latency() *Histogram { return s.lat }
