package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Snapshot is a deterministic point-in-time copy of a Registry:
// plain maps and sorted slices, safe to marshal, diff, and assert on.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Ops is the per-cloud operation table, sorted by (cloud, op).
	Ops []OpSnapshot `json:"ops,omitempty"`
}

// OpSnapshot is one row of the snapshotted operation table.
type OpSnapshot struct {
	Cloud string `json:"cloud"`
	Op    string `json:"op"`
	// Outcomes holds the nonzero outcome counts, keyed by
	// Outcome.String() ("ok", "transient", ...).
	Outcomes  map[string]int64  `json:"outcomes"`
	BytesUp   int64             `json:"bytesUp,omitempty"`
	BytesDown int64             `json:"bytesDown,omitempty"`
	Latency   HistogramSnapshot `json:"latency"`
}

// Snapshot copies the registry's current state. A nil registry yields
// a zero Snapshot. Writers may record concurrently; each individual
// metric is read atomically.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	for k, st := range r.ops {
		row := OpSnapshot{
			Cloud:    k.cloud,
			Op:       k.op,
			Outcomes: make(map[string]int64),
			Latency:  st.lat.snapshot(),
		}
		for o := Outcome(0); o < numOutcomes; o++ {
			if n := st.Count(o); n > 0 {
				row.Outcomes[o.String()] = n
			}
		}
		row.BytesUp, row.BytesDown = st.Bytes()
		s.Ops = append(s.Ops, row)
	}
	sort.Slice(s.Ops, func(i, j int) bool {
		if s.Ops[i].Cloud != s.Ops[j].Cloud {
			return s.Ops[i].Cloud < s.Ops[j].Cloud
		}
		return s.Ops[i].Op < s.Ops[j].Op
	})
	return s
}

// Counter returns the snapshotted value of the named counter (0 when
// absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the snapshotted value of the named gauge (0 when
// absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Op returns the table row for (cloud, op) and whether it exists.
func (s Snapshot) Op(cloud, op string) (OpSnapshot, bool) {
	for _, row := range s.Ops {
		if row.Cloud == cloud && row.Op == op {
			return row, true
		}
	}
	return OpSnapshot{}, false
}

// Outcome returns the row's count for the given outcome.
func (o OpSnapshot) Outcome(out Outcome) int64 { return o.Outcomes[out.String()] }

// Calls returns the row's total call count across outcomes.
func (o OpSnapshot) Calls() int64 {
	var n int64
	for _, v := range o.Outcomes {
		n += v
	}
	return n
}

// OutcomeTotal sums the given outcome over every op of one cloud —
// the number the chaos tests reconcile against injected fault counts.
func (s Snapshot) OutcomeTotal(cloud string, out Outcome) int64 {
	var n int64
	for _, row := range s.Ops {
		if row.Cloud == cloud {
			n += row.Outcome(out)
		}
	}
	return n
}

// String renders the snapshot as an aligned text report, suitable for
// CLI dumps and test failure messages. Ordering is deterministic.
func (s Snapshot) String() string {
	var b strings.Builder
	if len(s.Ops) > 0 {
		fmt.Fprintf(&b, "%-12s %-10s %8s %6s %6s %6s %6s %12s %12s %9s %9s %9s\n",
			"CLOUD", "OP", "CALLS", "OK", "TRANS", "UNAV", "CANC", "BYTES_UP", "BYTES_DOWN", "P50_MS", "P95_MS", "P99_MS")
		for _, row := range s.Ops {
			fmt.Fprintf(&b, "%-12s %-10s %8d %6d %6d %6d %6d %12d %12d %9.2f %9.2f %9.2f\n",
				row.Cloud, row.Op, row.Calls(),
				row.Outcome(OK), row.Outcome(Transient), row.Outcome(Unavailable), row.Outcome(Canceled),
				row.BytesUp, row.BytesDown,
				row.Latency.P50*1000, row.Latency.P95*1000, row.Latency.P99*1000)
		}
	}
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-44s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-44s %.3f\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			fmt.Fprintf(&b, "  %-44s n=%d mean=%.4fs p50=%.4fs p95=%.4fs p99=%.4fs\n",
				name, h.Count, h.Mean, h.P50, h.P95, h.P99)
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ServeHTTP makes a Registry an http.Handler: GET returns the current
// Snapshot as indented JSON. cloudhttp mounts it at /debug/unidrive.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Snapshot())
}

// expvarMu serializes expvar publication: expvar.Publish panics on a
// duplicate name, and tests (or several servers in one process) may
// publish repeatedly.
var expvarMu sync.Mutex

// PublishExpvar exposes the registry's snapshot under the given
// expvar name (shown at /debug/vars of any server using the expvar
// handler). Publishing an already-taken name is a no-op returning
// false, so repeated publication is safe.
func PublishExpvar(name string, r *Registry) bool {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return true
}
