// Package obs is UniDrive's observability layer: a dependency-free
// metrics core (atomic counters, gauges, fixed-bucket latency
// histograms) plus a cloud.Interface instrumenting wrapper that turns
// every Web API call into a row of a per-cloud operation table.
//
// The paper's scheduling decisions are driven entirely by observed
// per-cloud performance (§4.3, §6.2: in-channel probing, bandwidth
// disparity across clouds); obs makes those observations — and what
// the transfer engine, prober, and quorum lock actually did with them
// — visible. Metrics live in an explicit Registry (no global state):
// a process creates one Registry, threads it through the components
// it cares about, and reads it back with Snapshot, the /debug/unidrive
// HTTP handler, or expvar.
//
// Design constraints, chosen so tests can assert on metric deltas
// deterministically:
//
//   - recording is lock-free (atomics only) and allocation-free on
//     the hot path;
//   - the Registry runs no background goroutines;
//   - nothing in this package reads the wall clock — latencies are
//     measured by callers with the injectable vclock.Clock and passed
//     in as durations.
//
// A nil *Registry is valid everywhere: every accessor returns a
// shared discard instance whose recording methods work but whose
// values are never reported, so instrumented code needs no nil
// checks.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter. n must not be negative; counters only
// ever go up (use a Gauge for values that move both ways).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (occupancy, throughput
// estimate, queue depth). Writes overwrite; there is no history.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a set of named metrics. All accessors get-or-create:
// the first use of a name materializes the metric, later uses return
// the same instance. Safe for concurrent use; see the package comment
// for the nil-Registry convention.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	ops      map[opKey]*OpStats
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		ops:      make(map[opKey]*OpStats),
	}
}

// Shared discard instances handed out by a nil Registry. They absorb
// writes (keeping call sites branch-free) but belong to no snapshot.
var (
	discardCounter Counter
	discardGauge   Gauge
	discardHist    = newHistogram(DefaultLatencyBuckets)
	discardOp      = newOpStats()
)

// Counter returns the counter with the given name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &discardCounter
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &discardGauge
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, created with
// DefaultLatencyBuckets on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return discardHist
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = newHistogram(DefaultLatencyBuckets)
		r.hists[name] = h
	}
	return h
}

// Op returns the per-cloud operation stats row for (cloud, op). op is
// one of the Op* constants; cloud is the provider name.
func (r *Registry) Op(cloud, op string) *OpStats {
	if r == nil {
		return discardOp
	}
	k := opKey{cloud: cloud, op: op}
	r.mu.RLock()
	s, ok := r.ops[k]
	r.mu.RUnlock()
	if ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok = r.ops[k]; !ok {
		s = newOpStats()
		r.ops[k] = s
	}
	return s
}
