package obs

import "sort"

// MergeSnapshots combines per-registry snapshots into one fleet
// aggregate — the rollup the multi-tenant daemon serves at
// /debug/unidrive. Counters and per-op outcome/byte totals add;
// histograms merge bucket-wise so the aggregate quantiles are those
// of the combined sample distribution, not an average of per-tenant
// quantiles; gauges add too, which is the meaningful rollup for the
// gauges this codebase records (occupancy, queue depth, goodput —
// all extensive quantities).
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var out Snapshot
	type opIdx struct{ cloud, op string }
	ops := make(map[opIdx]*OpSnapshot)
	for _, s := range snaps {
		for name, v := range s.Counters {
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			if out.Gauges == nil {
				out.Gauges = make(map[string]float64)
			}
			out.Gauges[name] += v
		}
		for name, h := range s.Histograms {
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistogramSnapshot)
			}
			out.Histograms[name] = mergeHistogramSnapshots(out.Histograms[name], h)
		}
		for _, row := range s.Ops {
			k := opIdx{row.Cloud, row.Op}
			acc, ok := ops[k]
			if !ok {
				acc = &OpSnapshot{Cloud: row.Cloud, Op: row.Op, Outcomes: make(map[string]int64)}
				ops[k] = acc
			}
			for o, n := range row.Outcomes {
				acc.Outcomes[o] += n
			}
			acc.BytesUp += row.BytesUp
			acc.BytesDown += row.BytesDown
			acc.Latency = mergeHistogramSnapshots(acc.Latency, row.Latency)
		}
	}
	for _, acc := range ops {
		out.Ops = append(out.Ops, *acc)
	}
	sort.Slice(out.Ops, func(i, j int) bool {
		if out.Ops[i].Cloud != out.Ops[j].Cloud {
			return out.Ops[i].Cloud < out.Ops[j].Cloud
		}
		return out.Ops[i].Op < out.Ops[j].Op
	})
	return out
}
