package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"unidrive/internal/cloud"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(5)
	c.Add(-3) // negative adds are ignored: counters only go up
	c.Add(0)
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %v", g.Value())
	}
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %v, want 2.25", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge = %v, want -7", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter not memoized")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Error("distinct names share a counter")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not memoized")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram not memoized")
	}
	if r.Op("dropbox", OpUpload) != r.Op("dropbox", OpUpload) {
		t.Error("Op not memoized")
	}
	if r.Op("dropbox", OpUpload) == r.Op("dropbox", OpDownload) {
		t.Error("distinct ops share a row")
	}
	if r.Op("dropbox", OpUpload) == r.Op("gdrive", OpUpload) {
		t.Error("distinct clouds share a row")
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	// All accessors must hand out working discard instances.
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(0.5)
	r.Op("c", OpList).Record(OK, 0, 0, time.Millisecond)
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 || len(s.Ops) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram p50 = %v", h.Quantile(0.5))
	}
	// 100 samples uniform over (0,1]: whole distribution in bucket 0.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 50.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Interpolated p50 within [0,1): rank 50 of 100 -> 0.5.
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.5", got)
	}
	// q outside [0,1] is clamped.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("q<0 not clamped: %v vs %v", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Fatalf("q>1 not clamped: %v vs %v", got, h.Quantile(1))
	}

	// A sample beyond the last bound lands in +Inf and reports the
	// last finite bound.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Fatalf("+Inf bucket quantile = %v, want 2", got)
	}

	// Negative durations clamp to zero.
	h3 := newHistogram(DefaultLatencyBuckets)
	h3.ObserveDuration(-time.Second)
	if h3.Sum() != 0 || h3.Count() != 1 {
		t.Fatalf("negative duration: sum=%v count=%d", h3.Sum(), h3.Count())
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	s := h.snapshot()
	if s.Count != 10 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Mean-0.5) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.P50 <= 0 || s.P50 > 1 {
		t.Fatalf("p50 = %v out of bucket", s.P50)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Outcome
	}{
		{nil, OK},
		{cloud.ErrTransient, Transient},
		{fmt.Errorf("wrapped: %w", cloud.ErrTransient), Transient},
		{cloud.ErrUnavailable, Unavailable},
		{cloud.ErrNotFound, NotFound},
		{cloud.ErrQuotaExceeded, Quota},
		{context.Canceled, Canceled},
		{context.DeadlineExceeded, Canceled},
		// Cancellation wins even when wrapped together with a cloud
		// error class.
		{fmt.Errorf("%w: %w", cloud.ErrTransient, context.Canceled), Canceled},
		{fmt.Errorf("mystery"), Other},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if OK.String() != "ok" || Transient.String() != "transient" {
		t.Fatal("basic outcome names wrong")
	}
	if Outcome(200).String() != "other" {
		t.Fatalf("out-of-range outcome = %q", Outcome(200).String())
	}
}

func TestOpStats(t *testing.T) {
	r := NewRegistry()
	st := r.Op("dropbox", OpUpload)
	st.Record(OK, 100, 0, 2*time.Millisecond)
	st.Record(OK, 50, 0, 3*time.Millisecond)
	st.Record(Transient, 0, 0, time.Millisecond)
	st.Record(Outcome(250), 0, 0, 0) // out of range folds into Other

	if got := st.Count(OK); got != 2 {
		t.Fatalf("ok = %d", got)
	}
	if got := st.Count(Transient); got != 1 {
		t.Fatalf("transient = %d", got)
	}
	if got := st.Count(Other); got != 1 {
		t.Fatalf("other = %d", got)
	}
	if got := st.Count(Outcome(250)); got != 0 {
		t.Fatalf("out-of-range Count = %d", got)
	}
	if got := st.Calls(); got != 4 {
		t.Fatalf("calls = %d", got)
	}
	up, down := st.Bytes()
	if up != 150 || down != 0 {
		t.Fatalf("bytes = %d/%d", up, down)
	}
	if got := st.Latency().Count(); got != 4 {
		t.Fatalf("latency count = %d", got)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("retries").Add(3)
	r.Gauge("occupancy").Set(2.5)
	r.Histogram("block_seconds").Observe(0.2)
	r.Op("b", OpDownload).Record(OK, 0, 42, time.Millisecond)
	r.Op("a", OpUpload).Record(Transient, 0, 0, time.Millisecond)
	r.Op("a", OpDelete).Record(OK, 0, 0, time.Millisecond)

	s := r.Snapshot()
	if got := s.Counter("retries"); got != 3 {
		t.Fatalf("counter = %d", got)
	}
	if got := s.Counter("absent"); got != 0 {
		t.Fatalf("absent counter = %d", got)
	}
	if got := s.Gauge("occupancy"); got != 2.5 {
		t.Fatalf("gauge = %v", got)
	}
	if got := s.Histograms["block_seconds"].Count; got != 1 {
		t.Fatalf("hist count = %d", got)
	}
	// Ops sorted by (cloud, op).
	var order []string
	for _, row := range s.Ops {
		order = append(order, row.Cloud+"/"+row.Op)
	}
	want := []string{"a/delete", "a/upload", "b/download"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("op order = %v, want %v", order, want)
	}
	row, ok := s.Op("a", OpUpload)
	if !ok {
		t.Fatal("row a/upload missing")
	}
	if row.Outcome(Transient) != 1 || row.Calls() != 1 {
		t.Fatalf("row = %+v", row)
	}
	if _, ok := s.Op("a", OpList); ok {
		t.Fatal("phantom row a/list")
	}
	if got := s.OutcomeTotal("a", OK); got != 1 {
		t.Fatalf("OutcomeTotal(a, OK) = %d", got)
	}
	if got := s.OutcomeTotal("a", Transient); got != 1 {
		t.Fatalf("OutcomeTotal(a, Transient) = %d", got)
	}
	if got := s.OutcomeTotal("b", Transient); got != 0 {
		t.Fatalf("OutcomeTotal(b, Transient) = %d", got)
	}

	// The snapshot is a copy: later writes must not show up in it.
	r.Counter("retries").Inc()
	if got := s.Counter("retries"); got != 3 {
		t.Fatalf("snapshot mutated by later write: %d", got)
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Inc()
	r.Counter("a.first").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(0.01)
	r.Op("dropbox", OpUpload).Record(OK, 10, 0, time.Millisecond)
	out := r.Snapshot().String()
	for _, want := range []string{"CLOUD", "dropbox", "upload", "a.first", "z.last", "gauges:", "histograms:"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
	// Counters render sorted.
	if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Errorf("counters not sorted:\n%s", out)
	}
	if got := (Snapshot{}).String(); got != "" {
		t.Errorf("empty snapshot String() = %q", got)
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Op("dropbox", OpList).Record(OK, 0, 0, time.Millisecond)

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/unidrive", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if s.Counter("c") != 1 {
		t.Fatalf("decoded counter = %d", s.Counter("c"))
	}
	if _, ok := s.Op("dropbox", OpList); !ok {
		t.Fatal("decoded snapshot missing op row")
	}

	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/unidrive", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status = %d", rec.Code)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	if !PublishExpvar("obs_test_registry", r) {
		t.Fatal("first publish refused")
	}
	if PublishExpvar("obs_test_registry", NewRegistry()) {
		t.Fatal("duplicate publish accepted")
	}
}
