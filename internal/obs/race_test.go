package obs

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRecording hammers every hot path from GOMAXPROCS
// goroutines while another goroutine snapshots continuously, then
// asserts the exact final totals. Run under -race this doubles as the
// data-race check for the whole package.
func TestConcurrentRecording(t *testing.T) {
	const perG = 2000
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	r := NewRegistry()
	fc := &fakeCloud{name: "c", data: []byte("abc")}
	in := Instrument(fc, r, nil)

	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := r.Snapshot()
				_ = s.String()
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < perG; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(0.005)
				r.Op("c", OpUpload).Record(OK, 1, 0, time.Millisecond)
				_ = in.Upload(ctx, "f", []byte("x"))
			}
		}()
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	total := int64(workers) * perG
	s := r.Snapshot()
	if got := s.Counter("shared"); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := s.Gauge("g"); got != float64(total) {
		t.Errorf("gauge = %v, want %d", got, total)
	}
	if got := s.Histograms["h"].Count; got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	row, ok := s.Op("c", OpUpload)
	if !ok {
		t.Fatal("op row missing")
	}
	// perG direct Records plus perG instrumented uploads per worker.
	if got := row.Outcome(OK); got != 2*total {
		t.Errorf("op ok = %d, want %d", got, 2*total)
	}
	if row.BytesUp != 2*total { // 1 byte each, both paths
		t.Errorf("bytesUp = %d, want %d", row.BytesUp, 2*total)
	}
}

// TestConcurrentGetOrCreate races metric creation for the same names
// and checks every goroutine got the same instance (no lost updates).
func TestConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("n").Inc()
				r.Op("cloud", OpDelete).Record(OK, 0, 0, 0)
			}
		}()
	}
	wg.Wait()
	want := int64(workers) * 500
	if got := r.Counter("n").Value(); got != want {
		t.Errorf("counter = %d, want %d (lost updates across instances?)", got, want)
	}
	if got := r.Op("cloud", OpDelete).Count(OK); got != want {
		t.Errorf("op ok = %d, want %d", got, want)
	}
}
