package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the upper bounds, in seconds, of the
// fixed histogram buckets used for Web API and block-transfer
// latencies. They span 1 ms to 60 s roughly exponentially — wide
// enough for both the simulation substrate (scaled clocks compress
// real transfers into milliseconds) and real consumer clouds, whose
// per-request latencies the paper measured in the 0.1–10 s range. An
// implicit +Inf bucket catches everything beyond the last bound.
var DefaultLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket histogram with atomic bucket counts.
// Observations are lock-free; quantiles are estimated by linear
// interpolation inside the containing bucket, which is exact enough
// for p50/p95/p99 dashboards and deterministic for tests (the bucket
// layout never changes at runtime).
type Histogram struct {
	bounds []float64      // sorted upper bounds; counts has one extra +Inf slot
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds. Negative
// durations (clock anomalies) are clamped to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-th quantile (q in [0,1]) of the observed
// samples, interpolating linearly within the containing bucket.
// Samples in the +Inf bucket report the last finite bound. It returns
// 0 before any observation.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	buckets := make([]int64, len(h.counts))
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
	}
	return bucketQuantile(h.bounds, buckets, total, q)
}

// bucketQuantile estimates the q-th quantile from raw bucket counts
// over the given bounds (buckets has one extra trailing +Inf slot).
// Shared by live Histograms and merged HistogramSnapshots so a fleet
// rollup reports exactly what one histogram holding the union of the
// samples would.
func bucketQuantile(bounds []float64, buckets []int64, total int64, q float64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the sample we are after.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		if seen+n < rank {
			seen += n
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: the best point estimate we have is the
			// largest finite bound.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		frac := float64(rank-seen) / float64(n)
		return lo + (hi-lo)*frac
	}
	return bounds[len(bounds)-1]
}

// HistogramSnapshot is a point-in-time summary of a Histogram. It
// carries the raw bucket counts alongside the derived quantiles so
// snapshots from many registries (one per tenant) can be merged into
// a fleet aggregate whose quantiles are recomputed from the combined
// distribution rather than averaged.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Bounds are the bucket upper bounds; Buckets the per-bucket
	// counts, with one extra trailing +Inf slot.
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// snapshot summarizes the histogram. Concurrent observations may land
// between the bucket reads; callers that need exact reconciliation
// quiesce writers first (tests do, by construction). Count is the sum
// of the captured buckets, so the snapshot is always self-consistent.
func (h *Histogram) snapshot() HistogramSnapshot {
	buckets := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
		total += buckets[i]
	}
	bounds := make([]float64, len(h.bounds))
	copy(bounds, h.bounds)
	s := HistogramSnapshot{
		Count:   total,
		Sum:     h.Sum(),
		Bounds:  bounds,
		Buckets: buckets,
		P50:     bucketQuantile(bounds, buckets, total, 0.50),
		P95:     bucketQuantile(bounds, buckets, total, 0.95),
		P99:     bucketQuantile(bounds, buckets, total, 0.99),
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	return s
}

// mergeHistogramSnapshots combines b into a and recomputes the
// derived statistics. Bounds must match (all obs histograms share
// DefaultLatencyBuckets); on a mismatch, or when either side lacks
// buckets, only Count/Sum/Mean merge and the quantiles keep a's
// values — degraded but never wrong about totals.
func mergeHistogramSnapshots(a, b HistogramSnapshot) HistogramSnapshot {
	out := a
	out.Count = a.Count + b.Count
	out.Sum = a.Sum + b.Sum
	if out.Count > 0 {
		out.Mean = out.Sum / float64(out.Count)
	}
	if b.Count == 0 {
		return out
	}
	if a.Count == 0 {
		out.Bounds = b.Bounds
		out.Buckets = b.Buckets
		out.P50, out.P95, out.P99 = b.P50, b.P95, b.P99
		return out
	}
	if len(a.Buckets) == 0 || len(a.Buckets) != len(b.Buckets) || !equalBounds(a.Bounds, b.Bounds) {
		return out
	}
	buckets := make([]int64, len(a.Buckets))
	for i := range buckets {
		buckets[i] = a.Buckets[i] + b.Buckets[i]
	}
	out.Buckets = buckets
	out.P50 = bucketQuantile(out.Bounds, buckets, out.Count, 0.50)
	out.P95 = bucketQuantile(out.Bounds, buckets, out.Count, 0.95)
	out.P99 = bucketQuantile(out.Bounds, buckets, out.Count, 0.99)
	return out
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
