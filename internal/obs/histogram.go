package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the upper bounds, in seconds, of the
// fixed histogram buckets used for Web API and block-transfer
// latencies. They span 1 ms to 60 s roughly exponentially — wide
// enough for both the simulation substrate (scaled clocks compress
// real transfers into milliseconds) and real consumer clouds, whose
// per-request latencies the paper measured in the 0.1–10 s range. An
// implicit +Inf bucket catches everything beyond the last bound.
var DefaultLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket histogram with atomic bucket counts.
// Observations are lock-free; quantiles are estimated by linear
// interpolation inside the containing bucket, which is exact enough
// for p50/p95/p99 dashboards and deterministic for tests (the bucket
// layout never changes at runtime).
type Histogram struct {
	bounds []float64      // sorted upper bounds; counts has one extra +Inf slot
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds. Negative
// durations (clock anomalies) are clamped to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-th quantile (q in [0,1]) of the observed
// samples, interpolating linearly within the containing bucket.
// Samples in the +Inf bucket report the last finite bound. It returns
// 0 before any observation.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the sample we are after.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if seen+n < rank {
			seen += n
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: the best point estimate we have is the
			// largest finite bound.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := float64(rank-seen) / float64(n)
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// snapshot summarizes the histogram. Concurrent observations may land
// between the count and quantile reads; callers that need exact
// reconciliation quiesce writers first (tests do, by construction).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	return s
}
