package obs

import (
	"context"

	"unidrive/internal/cloud"
	"unidrive/internal/vclock"
)

// Instrumented wraps a cloud.Interface so every Web API call is
// recorded in a Registry's per-cloud operation table: latency, bytes
// up/down, and error class. It sits directly above the raw connector
// (below retry loops and the probing wrapper), so one recorded row is
// exactly one request against the cloud — retries show up as
// additional rows, which is what lets tests reconcile observed
// failures against injected ones one-for-one.
type Instrumented struct {
	inner cloud.Interface
	reg   *Registry
	clock vclock.Clock
}

var _ cloud.Interface = (*Instrumented)(nil)

// Instrument wraps inner with per-call recording into reg. A nil
// clock uses the real clock; a nil reg records into the discard
// instances (the wrapper stays cheap and call sites stay branch-free).
func Instrument(inner cloud.Interface, reg *Registry, clock vclock.Clock) *Instrumented {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &Instrumented{inner: inner, reg: reg, clock: clock}
}

// Unwrap returns the wrapped cloud.
func (in *Instrumented) Unwrap() cloud.Interface { return in.inner }

// Name implements cloud.Interface.
func (in *Instrumented) Name() string { return in.inner.Name() }

// Upload implements cloud.Interface.
func (in *Instrumented) Upload(ctx context.Context, path string, data []byte) error {
	start := in.clock.Now()
	err := in.inner.Upload(ctx, path, data)
	up := int64(0)
	if err == nil {
		up = int64(len(data))
	}
	in.reg.Op(in.inner.Name(), OpUpload).Record(Classify(err), up, 0, in.clock.Now().Sub(start))
	return err
}

// Download implements cloud.Interface.
func (in *Instrumented) Download(ctx context.Context, path string) ([]byte, error) {
	start := in.clock.Now()
	data, err := in.inner.Download(ctx, path)
	in.reg.Op(in.inner.Name(), OpDownload).Record(Classify(err), 0, int64(len(data)), in.clock.Now().Sub(start))
	return data, err
}

// CreateDir implements cloud.Interface.
func (in *Instrumented) CreateDir(ctx context.Context, path string) error {
	start := in.clock.Now()
	err := in.inner.CreateDir(ctx, path)
	in.reg.Op(in.inner.Name(), OpCreateDir).Record(Classify(err), 0, 0, in.clock.Now().Sub(start))
	return err
}

// List implements cloud.Interface.
func (in *Instrumented) List(ctx context.Context, path string) ([]cloud.Entry, error) {
	start := in.clock.Now()
	entries, err := in.inner.List(ctx, path)
	in.reg.Op(in.inner.Name(), OpList).Record(Classify(err), 0, 0, in.clock.Now().Sub(start))
	return entries, err
}

// Delete implements cloud.Interface.
func (in *Instrumented) Delete(ctx context.Context, path string) error {
	start := in.clock.Now()
	err := in.inner.Delete(ctx, path)
	in.reg.Op(in.inner.Name(), OpDelete).Record(Classify(err), 0, 0, in.clock.Now().Sub(start))
	return err
}
