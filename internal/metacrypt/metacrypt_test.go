package metacrypt

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripDES(t *testing.T) {
	c, err := New(DES, "secret")
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range [][]byte{nil, []byte("x"), []byte("exactly8"), bytes.Repeat([]byte("meta"), 1000)} {
		blob, err := c.Seal(pt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Open(blob)
		if err != nil {
			t.Fatalf("Open: %v (len %d)", err, len(pt))
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("round trip mismatch for len %d", len(pt))
		}
	}
}

func TestRoundTripAES(t *testing.T) {
	c, err := New(AES, "secret")
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("the sync folder image")
	blob, err := c.Seal(pt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("AES round trip mismatch")
	}
}

func TestCiphertextHidesPlaintext(t *testing.T) {
	for _, alg := range []Algorithm{DES, AES} {
		c, err := New(alg, "secret")
		if err != nil {
			t.Fatal(err)
		}
		pt := bytes.Repeat([]byte("AAAA"), 100)
		blob, err := c.Seal(pt)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(blob, pt[:16]) {
			t.Fatalf("%v: ciphertext contains plaintext run", alg)
		}
	}
}

func TestFreshIVPerSeal(t *testing.T) {
	c, err := New(DES, "secret")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Seal([]byte("same input"))
	b, _ := c.Seal([]byte("same input"))
	if bytes.Equal(a, b) {
		t.Fatal("two Seals of equal plaintext produced identical blobs (IV reuse)")
	}
}

func TestWrongPassphraseFailsOrGarbles(t *testing.T) {
	c1, _ := New(DES, "right")
	c2, _ := New(DES, "wrong")
	pt := []byte("metadata body that is long enough to matter")
	blob, err := c1.Seal(pt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Open(blob)
	if err == nil && bytes.Equal(got, pt) {
		t.Fatal("wrong passphrase decrypted successfully")
	}
}

func TestAlgorithmMismatchRejected(t *testing.T) {
	d, _ := New(DES, "k")
	a, _ := New(AES, "k")
	blob, err := d.Seal([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Open(blob); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed on algorithm mismatch", err)
	}
}

func TestMalformedBlobs(t *testing.T) {
	c, _ := New(DES, "k")
	cases := [][]byte{
		nil,
		{},
		{byte(DES)},
		{byte(DES), 1, 2, 3},
		{99, 1, 2, 3, 4, 5, 6, 7, 8},
		append([]byte{byte(DES)}, make([]byte, 8)...), // IV only, no ciphertext
	}
	for i, blob := range cases {
		if _, err := c.Open(blob); !errors.Is(err, ErrMalformed) {
			t.Errorf("case %d: err = %v, want ErrMalformed", i, err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DES, ""); err == nil {
		t.Fatal("empty passphrase accepted")
	}
	if _, err := New(Algorithm(7), "k"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	if DES.String() != "des-cbc" || AES.String() != "aes-256-ctr" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(9).String() == "" {
		t.Fatal("unknown algorithm should still print")
	}
}

func TestAlgorithmAccessor(t *testing.T) {
	c, _ := New(AES, "k")
	if c.Algorithm() != AES {
		t.Fatal("Algorithm() mismatch")
	}
}

func TestRoundTripProperty(t *testing.T) {
	des, _ := New(DES, "prop")
	aes, _ := New(AES, "prop")
	f := func(pt []byte) bool {
		for _, c := range []*Cipher{des, aes} {
			blob, err := c.Seal(pt)
			if err != nil {
				return false
			}
			got, err := c.Open(blob)
			if err != nil || !bytes.Equal(got, pt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPKCS7Padding(t *testing.T) {
	for n := 0; n <= 24; n++ {
		padded := padPKCS7(make([]byte, n), 8)
		if len(padded)%8 != 0 || len(padded) <= n {
			t.Fatalf("pad(%d) gave length %d", n, len(padded))
		}
		unpadded, err := unpadPKCS7(padded, 8)
		if err != nil {
			t.Fatalf("unpad(%d): %v", n, err)
		}
		if len(unpadded) != n {
			t.Fatalf("unpad(%d) gave length %d", n, len(unpadded))
		}
	}
	if _, err := unpadPKCS7([]byte{1, 2, 3}, 8); err == nil {
		t.Fatal("unpad of non-multiple length accepted")
	}
	if _, err := unpadPKCS7([]byte{0, 0, 0, 0, 0, 0, 0, 0}, 8); err == nil {
		t.Fatal("zero padding byte accepted")
	}
}
