// Package metacrypt encrypts UniDrive's serialized metadata before it
// is replicated to the clouds.
//
// The paper specifies that "metadata is DES encrypted and replicated
// to all clouds" (§4). This package implements that faithfully
// (DES-CBC with PKCS#7 padding) and, because single-DES has been
// obsolete for decades, also offers an AES-256-CTR cipher that callers
// should prefer for anything beyond reproducing the paper. Ciphertext
// is self-describing: a one-byte algorithm tag precedes the IV.
//
// Note that, as in the paper, only the metadata is encrypted at this
// layer — content confidentiality comes from the non-systematic
// erasure code bounding how many blocks any provider holds (§6.1).
package metacrypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/des"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// Algorithm selects the metadata cipher.
type Algorithm byte

// Supported algorithms.
const (
	// DES is the paper's cipher: DES-CBC with PKCS#7 padding.
	DES Algorithm = iota + 1
	// AES is AES-256-CTR, the recommended modern alternative.
	AES
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case DES:
		return "des-cbc"
	case AES:
		return "aes-256-ctr"
	default:
		return fmt.Sprintf("Algorithm(%d)", byte(a))
	}
}

// ErrMalformed reports ciphertext that cannot be parsed or whose
// padding is invalid.
var ErrMalformed = errors.New("metacrypt: malformed ciphertext")

// Cipher encrypts and decrypts metadata blobs with a key derived from
// a user passphrase. A Cipher is immutable and safe for concurrent
// use.
type Cipher struct {
	alg    Algorithm
	desKey []byte // 8 bytes
	aesKey []byte // 32 bytes
}

// New derives a Cipher from the user's passphrase. The key schedule
// is SHA-256 of the passphrase: the first 8 bytes key DES, the full
// 32 bytes key AES.
func New(alg Algorithm, passphrase string) (*Cipher, error) {
	if alg != DES && alg != AES {
		return nil, fmt.Errorf("metacrypt: unknown algorithm %v", alg)
	}
	if passphrase == "" {
		return nil, errors.New("metacrypt: empty passphrase")
	}
	sum := sha256.Sum256([]byte(passphrase))
	return &Cipher{alg: alg, desKey: sum[:8], aesKey: sum[:]}, nil
}

// Algorithm returns the cipher's algorithm.
func (c *Cipher) Algorithm() Algorithm { return c.alg }

// Seal encrypts plaintext. Output layout: tag byte, IV, ciphertext.
func (c *Cipher) Seal(plaintext []byte) ([]byte, error) {
	switch c.alg {
	case DES:
		return c.sealDES(plaintext)
	case AES:
		return c.sealAES(plaintext)
	default:
		return nil, fmt.Errorf("metacrypt: unknown algorithm %v", c.alg)
	}
}

// Open decrypts a blob produced by Seal with the same passphrase. The
// algorithm is read from the blob's tag and must match the cipher's.
func (c *Cipher) Open(blob []byte) ([]byte, error) {
	if len(blob) < 1 {
		return nil, fmt.Errorf("%w: empty blob", ErrMalformed)
	}
	alg := Algorithm(blob[0])
	if alg != c.alg {
		return nil, fmt.Errorf("%w: blob is %v, cipher is %v", ErrMalformed, alg, c.alg)
	}
	switch alg {
	case DES:
		return c.openDES(blob[1:])
	case AES:
		return c.openAES(blob[1:])
	default:
		return nil, fmt.Errorf("%w: unknown algorithm tag %d", ErrMalformed, blob[0])
	}
}

func (c *Cipher) sealDES(plaintext []byte) ([]byte, error) {
	block, err := des.NewCipher(c.desKey)
	if err != nil {
		return nil, fmt.Errorf("metacrypt: des key: %w", err)
	}
	padded := padPKCS7(plaintext, des.BlockSize)
	out := make([]byte, 1+des.BlockSize+len(padded))
	out[0] = byte(DES)
	iv := out[1 : 1+des.BlockSize]
	if _, err := rand.Read(iv); err != nil {
		return nil, fmt.Errorf("metacrypt: iv: %w", err)
	}
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(out[1+des.BlockSize:], padded)
	return out, nil
}

func (c *Cipher) openDES(rest []byte) ([]byte, error) {
	if len(rest) < des.BlockSize || (len(rest)-des.BlockSize)%des.BlockSize != 0 ||
		len(rest) == des.BlockSize {
		return nil, fmt.Errorf("%w: bad DES blob length %d", ErrMalformed, len(rest))
	}
	block, err := des.NewCipher(c.desKey)
	if err != nil {
		return nil, fmt.Errorf("metacrypt: des key: %w", err)
	}
	iv, ct := rest[:des.BlockSize], rest[des.BlockSize:]
	pt := make([]byte, len(ct))
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(pt, ct)
	return unpadPKCS7(pt, des.BlockSize)
}

func (c *Cipher) sealAES(plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(c.aesKey)
	if err != nil {
		return nil, fmt.Errorf("metacrypt: aes key: %w", err)
	}
	out := make([]byte, 1+aes.BlockSize+len(plaintext))
	out[0] = byte(AES)
	iv := out[1 : 1+aes.BlockSize]
	if _, err := rand.Read(iv); err != nil {
		return nil, fmt.Errorf("metacrypt: iv: %w", err)
	}
	cipher.NewCTR(block, iv).XORKeyStream(out[1+aes.BlockSize:], plaintext)
	return out, nil
}

func (c *Cipher) openAES(rest []byte) ([]byte, error) {
	if len(rest) < aes.BlockSize {
		return nil, fmt.Errorf("%w: bad AES blob length %d", ErrMalformed, len(rest))
	}
	block, err := aes.NewCipher(c.aesKey)
	if err != nil {
		return nil, fmt.Errorf("metacrypt: aes key: %w", err)
	}
	iv, ct := rest[:aes.BlockSize], rest[aes.BlockSize:]
	pt := make([]byte, len(ct))
	cipher.NewCTR(block, iv).XORKeyStream(pt, ct)
	return pt, nil
}

func padPKCS7(data []byte, blockSize int) []byte {
	pad := blockSize - len(data)%blockSize
	out := make([]byte, len(data)+pad)
	copy(out, data)
	for i := len(data); i < len(out); i++ {
		out[i] = byte(pad)
	}
	return out
}

func unpadPKCS7(data []byte, blockSize int) ([]byte, error) {
	if len(data) == 0 || len(data)%blockSize != 0 {
		return nil, fmt.Errorf("%w: bad padded length %d", ErrMalformed, len(data))
	}
	pad := int(data[len(data)-1])
	if pad < 1 || pad > blockSize || pad > len(data) {
		return nil, fmt.Errorf("%w: bad padding byte %d", ErrMalformed, pad)
	}
	for _, b := range data[len(data)-pad:] {
		if int(b) != pad {
			return nil, fmt.Errorf("%w: inconsistent padding", ErrMalformed)
		}
	}
	return data[:len(data)-pad], nil
}
