GO ?= go

# Packages whose tests exercise concurrent machinery (data plane,
# metrics hot paths, quorum lock, full-stack sync); the race detector
# runs over exactly these in `make test-race` and `make check`.
RACE_PKGS = ./internal/erasure/... ./internal/gf256/... ./internal/transfer/... \
	./internal/obs/... ./internal/qlock/... ./internal/core/... ./internal/health/... \
	./internal/journal/... ./internal/localfs/... ./internal/deltasync/... \
	./internal/daemon/... ./internal/trial/... ./internal/netsim/... ./internal/scrub/... \
	./internal/capacity/...

# Coverage gate: the repo total must not drop below the recorded
# baseline, and the observability layer is held to a higher bar.
COVER_BASELINE = 74.9
COVER_OBS_MIN = 85.0
COVER_HEALTH_MIN = 85.0
COVER_JOURNAL_MIN = 85.0
COVER_LOCALFS_MIN = 85.0
COVER_DAEMON_MIN = 85.0
COVER_SCRUB_MIN = 85.0
COVER_CAPACITY_MIN = 85.0

.PHONY: build vet test test-race bench-erasure bench-sync bench-trial bench chaos scrub check cover

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race $(RACE_PKGS)

# The data-plane throughput numbers (kernels, pooled encode/decode,
# size sweep). BENCH_erasure.json snapshots a run of these.
bench-erasure:
	$(GO) test -run '^$$' -bench 'BenchmarkErasure|BenchmarkGF' -benchmem ./internal/erasure/ ./internal/gf256/

# Control-plane pass latency: full rescan vs event-driven at 1k/10k/50k
# files. BENCH_sync.json snapshots a run of these
# (UNIDRIVE_WRITE_BENCH=1 go test -run TestWriteSyncBenchSnapshot ./internal/core/).
bench-sync:
	$(GO) test -run '^$$' -bench BenchmarkSyncPass -benchmem ./internal/core/

# 100k-user synthetic-population trial (§7.3 / Figure 15 analogue):
# runs the analytic harness twice for the determinism check and
# regenerates BENCH_trial.json at the repo root.
bench-trial:
	UNIDRIVE_WRITE_BENCH=1 $(GO) test -run TestWriteTrialBenchSnapshot -count=1 -timeout 30m -v ./internal/trial/

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Fault-injection soak: the chaos, outage, failover, hedging,
# crash-recovery, quota-exhaustion, and data-corruption tests under
# the race detector with a generous timeout.
chaos:
	$(GO) test -race -timeout 15m -run 'Chaos|Outage|Failover|Hedge|Flaky|Breaker|Guard|Degraded|Crash|Recover|Corrupt|Scrub|Quota' \
		./internal/core/... ./internal/transfer/... ./internal/health/... \
		./internal/qlock/... ./internal/cloudsim/... ./internal/scrub/... \
		./internal/capacity/...

# Integrity smoke: the anti-entropy scrubber's own suite plus the
# end-to-end corruption/repair paths in core, race-checked.
scrub:
	$(GO) test -race -timeout 10m -run 'Scrub|Corrupt|Integrity|Backfill' \
		./internal/scrub/... ./internal/core/...

cover:
	COVER_BASELINE=$(COVER_BASELINE) COVER_OBS_MIN=$(COVER_OBS_MIN) COVER_HEALTH_MIN=$(COVER_HEALTH_MIN) \
		COVER_JOURNAL_MIN=$(COVER_JOURNAL_MIN) COVER_LOCALFS_MIN=$(COVER_LOCALFS_MIN) \
		COVER_DAEMON_MIN=$(COVER_DAEMON_MIN) COVER_SCRUB_MIN=$(COVER_SCRUB_MIN) \
		COVER_CAPACITY_MIN=$(COVER_CAPACITY_MIN) ./scripts/cover.sh

# Tier-1 gate: everything a change must pass before merging.
check: vet build test test-race
