GO ?= go

# Packages whose tests exercise the concurrent data plane; the race
# detector runs over exactly these in `make test-race` and `make check`.
RACE_PKGS = ./internal/erasure/... ./internal/gf256/... ./internal/transfer/...

.PHONY: build vet test test-race bench-erasure bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race $(RACE_PKGS)

# The data-plane throughput numbers (kernels, pooled encode/decode,
# size sweep). BENCH_erasure.json snapshots a run of these.
bench-erasure:
	$(GO) test -run '^$$' -bench 'BenchmarkErasure|BenchmarkGF' -benchmem ./internal/erasure/ ./internal/gf256/

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Tier-1 gate: everything a change must pass before merging.
check: vet build test test-race
