package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"unidrive/internal/capacity"
	"unidrive/internal/cloud"
	"unidrive/internal/cloudhttp"
	"unidrive/internal/core"
	"unidrive/internal/localfs"
	"unidrive/internal/obs"
	"unidrive/internal/vclock"
)

// runScrub implements `unidrive scrub`: one anti-entropy cycle over
// the committed metadata, verifying every block copy's existence and
// checksum, with an optional repair pass restoring full redundancy.
func runScrub(args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	folderPath := fs.String("folder", "./unidrive-sync", "local sync folder")
	device := fs.String("device", hostnameDefault(), "unique device name")
	passphrase := fs.String("passphrase", "", "metadata encryption passphrase (required)")
	cloudList := fs.String("clouds", "", "comma-separated base URLs of cloud endpoints (required)")
	repair := fs.Bool("repair", false, "re-encode and re-upload damaged blocks, commit refreshed placements")
	rate := fs.Float64("rate", 0, "max block fetches per second (0 = unpaced)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *passphrase == "" {
		return fmt.Errorf("-passphrase is required")
	}
	urls := strings.Split(*cloudList, ",")
	if *cloudList == "" || len(urls) == 0 {
		return fmt.Errorf("-clouds is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var clouds []cloud.Interface
	for _, u := range urls {
		c, err := cloudhttp.Dial(ctx, strings.TrimSpace(u), http.DefaultClient)
		if err != nil {
			return fmt.Errorf("dialing %s: %w", u, err)
		}
		clouds = append(clouds, c)
	}
	folder, err := localfs.NewDir(*folderPath)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	client, err := core.New(clouds, folder, core.Config{
		Device:     *device,
		Passphrase: *passphrase,
		ScrubRate:  *rate,
		Capacity:   capacity.NewDefaultTracker(vclock.Real{}, reg),
		Obs:        reg,
	})
	if err != nil {
		return err
	}

	rep, err := client.Scrub(ctx, *repair)
	if err != nil {
		return err
	}
	fmt.Printf("scrub: %d segments, %d copies checked: %d verified, %d missing, %d corrupt\n",
		rep.Segments, rep.BlocksChecked, rep.BlocksVerified, rep.BlocksMissing, rep.BlocksCorrupt)
	if rep.RepairedBlocks > 0 || rep.Backfilled > 0 {
		fmt.Printf("scrub: %d blocks repaired, %d checksums backfilled (committed: %v)\n",
			rep.RepairedBlocks, rep.Backfilled, rep.Committed)
	}
	if rep.ThinSegments > 0 || rep.ReexpandedBlocks > 0 {
		fmt.Printf("scrub: %d thin segments walked, %d blocks re-expanded, %d thin marks cleared\n",
			rep.ThinSegments, rep.ReexpandedBlocks, rep.ThinCleared)
	}
	for _, c := range rep.UnknownClouds {
		fmt.Printf("scrub: cloud %s unreachable: its copies were not checked\n", c)
	}
	for _, id := range rep.Unrepairable {
		fmt.Printf("scrub: segment %s UNREPAIRABLE: fewer than K verified blocks reachable\n", id)
	}
	for _, id := range rep.UnrepairableCapacity {
		fmt.Printf("scrub: segment %s deferred: intact, but every eligible cloud is out of quota\n", id)
	}
	damaged := rep.BlocksMissing + rep.BlocksCorrupt
	if damaged > 0 && !*repair {
		fmt.Printf("scrub: %d damaged copies found; re-run with -repair to restore redundancy\n", damaged)
	}
	if len(rep.Unrepairable) > 0 {
		return fmt.Errorf("scrub: %d segments unrepairable", len(rep.Unrepairable))
	}
	return nil
}
