package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unidrive/internal/cloud"
	"unidrive/internal/cloudhttp"
	"unidrive/internal/core"
	"unidrive/internal/daemon"
	"unidrive/internal/localfs"
	"unidrive/internal/obs"
)

// serveConfig is the JSON document given to `unidrive serve -config`.
type serveConfig struct {
	// Listen is the debug/metrics HTTP address (default ":7070";
	// overridable with -listen).
	Listen string `json:"listen"`
	// ConnsPerCloud is the PROCESS-wide per-cloud connection budget
	// shared by all tenants (default 5).
	ConnsPerCloud int `json:"connsPerCloud"`
	// ScrubInterval, as a Go duration string ("6h"), schedules a
	// low-priority anti-entropy scrub cycle per tenant at this period;
	// empty disables scheduled scrubbing.
	ScrubInterval string `json:"scrubInterval"`
	// ScrubRepair lets scheduled scrub cycles re-upload damaged blocks
	// and commit refreshed placements, not just report them.
	ScrubRepair bool `json:"scrubRepair"`
	// Tenants are the hosted (user, folder) pairs.
	Tenants []serveTenant `json:"tenants"`
}

// serveTenant configures one hosted tenant.
//
// Each tenant needs its OWN cloud accounts: a tenant's encrypted
// metadata lives at fixed paths in its accounts, so two tenants
// pointed at the same endpoint collide (exactly as two users sharing
// one Dropbox login would). Give tenants distinct endpoints whose
// Name() is the shared provider ("alpha", "beta", ...) — the fair
// scheduler budgets connections by provider name, so same-named
// clouds across tenants share one egress budget while their storage
// stays disjoint.
type serveTenant struct {
	ID         string   `json:"id"`
	Weight     float64  `json:"weight"`
	Device     string   `json:"device"`
	Passphrase string   `json:"passphrase"`
	Folder     string   `json:"folder"`
	Clouds     []string `json:"clouds"`
	K          int      `json:"k"`
	Kr         int      `json:"kr"`
	Ks         int      `json:"ks"`
	// Interval is the remote-poll (and polling-mode sync) period as a
	// Go duration string, e.g. "30s".
	Interval string `json:"interval"`
	// Watch uses filesystem notifications when available (default
	// true; set false to force polling).
	Watch *bool `json:"watch"`
}

// runServe is the `unidrive serve` subcommand: one process hosting
// many tenants over one shared connection budget, with per-tenant
// breakers and metrics rolled up at /debug/unidrive.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	configPath := fs.String("config", "", "tenant configuration JSON (required)")
	listen := fs.String("listen", "", "debug endpoint address (overrides the config's listen)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("serve: -config is required")
	}
	blob, err := os.ReadFile(*configPath)
	if err != nil {
		return err
	}
	var cfg serveConfig
	if err := json.Unmarshal(blob, &cfg); err != nil {
		return fmt.Errorf("serve: parsing %s: %w", *configPath, err)
	}
	if len(cfg.Tenants) == 0 {
		return fmt.Errorf("serve: no tenants in %s", *configPath)
	}
	addr := cfg.Listen
	if *listen != "" {
		addr = *listen
	}
	if addr == "" {
		addr = ":7070"
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var scrubEvery time.Duration
	if cfg.ScrubInterval != "" {
		if scrubEvery, err = time.ParseDuration(cfg.ScrubInterval); err != nil {
			return fmt.Errorf("serve: bad scrubInterval: %w", err)
		}
	}
	fleetReg := obs.NewRegistry()
	d := daemon.New(daemon.Config{
		ConnsPerCloud: cfg.ConnsPerCloud,
		Obs:           fleetReg,
		HealthSeed:    time.Now().UnixNano(),
		ScrubInterval: scrubEvery,
		ScrubRepair:   cfg.ScrubRepair,
	})

	for _, tc := range cfg.Tenants {
		if tc.ID == "" || tc.Passphrase == "" || tc.Folder == "" || len(tc.Clouds) == 0 {
			return fmt.Errorf("serve: tenant needs id, passphrase, folder, and clouds (got %+v)", tc.ID)
		}
		var clouds []cloud.Interface
		for _, u := range tc.Clouds {
			c, err := cloudhttp.Dial(ctx, strings.TrimSpace(u), http.DefaultClient)
			if err != nil {
				return fmt.Errorf("serve: tenant %s: dialing %s: %w", tc.ID, u, err)
			}
			clouds = append(clouds, c)
		}
		folder, err := localfs.NewDir(tc.Folder)
		if err != nil {
			return fmt.Errorf("serve: tenant %s: %w", tc.ID, err)
		}
		interval := 30 * time.Second
		if tc.Interval != "" {
			if interval, err = time.ParseDuration(tc.Interval); err != nil {
				return fmt.Errorf("serve: tenant %s: bad interval: %w", tc.ID, err)
			}
		}
		cc := core.Config{
			Device:       tc.Device,
			Passphrase:   tc.Passphrase,
			K:            tc.K,
			Kr:           tc.Kr,
			Ks:           tc.Ks,
			SyncInterval: interval,
		}
		if tc.Watch != nil && !*tc.Watch {
			cc.DisableWatch = true
		}
		tn, err := d.AddTenant(daemon.TenantConfig{
			ID:     tc.ID,
			Weight: tc.Weight,
			Clouds: clouds,
			Folder: folder,
			Core:   cc,
		})
		if err != nil {
			return err
		}
		// Same cold-start path as single-tenant mode: restore the
		// checkpoint, replay crash intents.
		if restored, reason, err := tn.Client().LoadState(); err == nil && restored {
			fmt.Printf("serve: tenant %s: restored previous sync state\n", tc.ID)
		} else if err == nil && reason != core.ColdStartFresh {
			fmt.Printf("serve: tenant %s: cold start (%s), rescanning\n", tc.ID, reason)
		}
		if rec, err := tn.Client().Recover(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "serve: tenant %s: crash recovery: %v\n", tc.ID, err)
		} else if rec.IntentsReplayed > 0 {
			fmt.Printf("serve: tenant %s: crash recovery replayed %d intents\n", tc.ID, rec.IntentsReplayed)
		}
		fmt.Printf("serve: tenant %s: folder %s, %d clouds, weight %.1f\n",
			tc.ID, folder.Root(), len(clouds), max(tc.Weight, 1))
	}

	mux := http.NewServeMux()
	mux.Handle("/debug/unidrive", d)
	srv := &http.Server{Addr: addr, Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "serve: debug endpoint:", err)
		}
	}()
	defer srv.Close()

	debugAddr := addr
	if strings.HasPrefix(debugAddr, ":") {
		debugAddr = "localhost" + debugAddr
	}
	fmt.Printf("serve: hosting %d tenants, %d conns/cloud shared, debug at http://%s/debug/unidrive (ctrl-c to stop)\n",
		len(cfg.Tenants), d.Fair().Conns(), debugAddr)
	d.Run(ctx, func(id string, err error) {
		fmt.Fprintf(os.Stderr, "serve: tenant %s: sync: %v\n", id, err)
	})
	fmt.Println("serve: stopped")
	return nil
}
