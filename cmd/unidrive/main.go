// Command unidrive is the UniDrive client CLI: it synchronizes a
// local folder with a multi-cloud of CCS endpoints reachable over the
// RESTful Web API (e.g. cmd/unicloud instances, or any service
// wrapped in that API).
//
// Usage:
//
//	unidrive -folder ./sync -device laptop -passphrase secret \
//	         -clouds http://localhost:8081,http://localhost:8082,http://localhost:8083 \
//	         [-kr 2] [-ks 2] [-once] [-interval 30s] [-watch=false] \
//	         [-debounce 500ms] [-rescan-interval 5m]
//
// Without -once it runs as a daemon. On platforms with filesystem
// notifications (and unless -watch=false) the daemon is event-driven:
// local edits are detected by a watcher, debounced for -debounce, and
// committed with an O(changes) pass; the clouds are polled for peer
// commits every -interval via a cheap version-stamp check; and a full
// folder rescan every -rescan-interval catches anything a lossy
// watcher dropped. Without watch support it falls back to a full scan
// every -interval (the paper's periodic design).
//
// The `serve` subcommand instead hosts MANY tenants (user × folder
// pairs) in one process over a shared per-cloud connection budget:
//
//	unidrive serve -config tenants.json [-listen :7070]
//
// The `scrub` subcommand runs one anti-entropy cycle: it verifies
// every committed block copy's existence and CRC-32C checksum against
// the metadata, and with -repair re-encodes and re-uploads damaged
// copies from the surviving blocks:
//
//	unidrive scrub -folder ./sync -passphrase secret \
//	         -clouds http://localhost:8081,... [-repair] [-rate 50]
//
// The `status` subcommand prints a read-only capacity and placement
// view: per-cloud block counts and quota state, plus any segments
// committed THIN (under-replicated because clouds were out of quota
// when they were written):
//
//	unidrive status -folder ./sync -passphrase secret \
//	         -clouds http://localhost:8081,... [-v]
//
// See cmd/unidrive/serve.go for the config format and README.md for a
// quick start.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unidrive/internal/capacity"
	"unidrive/internal/cloud"
	"unidrive/internal/cloudhttp"
	"unidrive/internal/core"
	"unidrive/internal/health"
	"unidrive/internal/localfs"
	"unidrive/internal/obs"
	"unidrive/internal/vclock"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "unidrive:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "scrub" {
		if err := runScrub(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "unidrive:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "status" {
		if err := runStatus(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "unidrive:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "unidrive:", err)
		os.Exit(1)
	}
}

func run() error {
	folderPath := flag.String("folder", "./unidrive-sync", "local sync folder")
	device := flag.String("device", hostnameDefault(), "unique device name")
	passphrase := flag.String("passphrase", "", "metadata encryption passphrase (required)")
	cloudList := flag.String("clouds", "", "comma-separated base URLs of cloud endpoints (required)")
	k := flag.Int("k", 3, "data blocks per segment")
	kr := flag.Int("kr", 0, "min reachable clouds that must recover data (default N-2, >=1)")
	ks := flag.Int("ks", 2, "min breached clouds that may reconstruct data")
	once := flag.Bool("once", false, "sync once and exit")
	interval := flag.Duration("interval", 30*time.Second, "remote poll (and polling-mode sync) interval in daemon mode")
	watch := flag.Bool("watch", true, "use filesystem notifications when available (event-driven sync)")
	debounce := flag.Duration("debounce", 0, "settle window for coalescing watcher events (default: min(500ms, interval/4))")
	rescanInterval := flag.Duration("rescan-interval", 0, "safety-net full-rescan period in watch mode (default: 10x interval)")
	flag.Parse()

	if *passphrase == "" {
		return fmt.Errorf("-passphrase is required")
	}
	urls := strings.Split(*cloudList, ",")
	if *cloudList == "" || len(urls) == 0 {
		return fmt.Errorf("-clouds is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var clouds []cloud.Interface
	for _, u := range urls {
		c, err := cloudhttp.Dial(ctx, strings.TrimSpace(u), http.DefaultClient)
		if err != nil {
			return fmt.Errorf("dialing %s: %w", u, err)
		}
		fmt.Printf("connected to %s (%s)\n", c.Name(), u)
		clouds = append(clouds, c)
	}

	folder, err := localfs.NewDir(*folderPath)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	tracker := health.NewDefaultTracker(vclock.Real{}, time.Now().UnixNano(), reg)
	capTracker := capacity.NewDefaultTracker(vclock.Real{}, reg)
	printReport := func(rep core.SyncReport) {
		fmt.Printf("sync v%d: %d local changes committed, %d cloud changes applied",
			rep.Version, rep.LocalChanges, rep.CloudChanges)
		if rep.Upload.SegmentsUploaded > 0 {
			fmt.Printf(", %d segments (%d bytes) uploaded, available in %v",
				rep.Upload.SegmentsUploaded, rep.Upload.BytesUploaded, rep.AvailableDuration.Round(time.Millisecond))
		}
		for _, c := range rep.Conflicts {
			fmt.Printf("\nconflict retained as %q", c)
		}
		fmt.Println()
	}
	client, err := core.New(clouds, folder, core.Config{
		Device:             *device,
		Passphrase:         *passphrase,
		K:                  *k,
		Kr:                 *kr,
		Ks:                 *ks,
		SyncInterval:       *interval,
		DisableWatch:       !*watch,
		DebounceWindow:     *debounce,
		FullRescanInterval: *rescanInterval,
		OnPass:             printReport,
		Obs:                reg,
		Health:             tracker,
		Capacity:           capTracker,
	})
	if err != nil {
		return err
	}
	if restored, reason, err := client.LoadState(); err == nil && restored {
		fmt.Println("restored previous sync state")
	} else if err == nil && reason != core.ColdStartFresh {
		fmt.Printf("cold start (%s): rescanning the whole folder\n", reason)
	}
	if rec, err := client.Recover(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "unidrive: crash recovery:", err)
	} else if rec.IntentsReplayed > 0 {
		fmt.Printf("crash recovery: %d intents replayed, %d blocks resumed, %d orphans reclaimed, %d paths preserved\n",
			rec.IntentsReplayed, rec.BlocksResumed, rec.OrphansReclaimed, rec.PathsSuppressed)
	}
	fmt.Printf("unidrive: device %q, folder %s, %d clouds, params %+v\n",
		*device, folder.Root(), len(clouds), client.Params())

	if *once {
		rep, err := client.SyncOnce(ctx)
		if err != nil {
			return err
		}
		printReport(rep)
		return nil
	}

	if *watch {
		fmt.Printf("watching %s: event-driven when supported, remote poll every %v (ctrl-c to stop)\n",
			folder.Root(), *interval)
	} else {
		fmt.Printf("polling %s every %v (ctrl-c to stop)\n", folder.Root(), *interval)
	}
	// RunLoop owns the cadence from here: an immediate first full pass,
	// then watcher-driven dirty passes, remote stamp polls, and the
	// safety-net rescans. OnPass (printReport) narrates passes that
	// moved data; errors surface here with breaker context.
	client.RunLoop(ctx, func(err error) {
		fmt.Fprintln(os.Stderr, "unidrive: sync:", err)
		for _, c := range clouds {
			if b := tracker.Breaker(c.Name()); b.State() != health.Closed {
				fmt.Fprintf(os.Stderr, "unidrive: cloud %s breaker %v\n", c.Name(), b.State())
			}
			if st := capTracker.State(c.Name()); st != capacity.OK {
				fmt.Fprintf(os.Stderr, "unidrive: cloud %s capacity %v (%d quota rejections)\n",
					c.Name(), st, capTracker.Rejections(c.Name()))
			}
		}
	})
	fmt.Println("unidrive: stopped")
	return nil
}

func hostnameDefault() string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return "device"
}
