// Command unidrive is the UniDrive client CLI: it synchronizes a
// local folder with a multi-cloud of CCS endpoints reachable over the
// RESTful Web API (e.g. cmd/unicloud instances, or any service
// wrapped in that API).
//
// Usage:
//
//	unidrive -folder ./sync -device laptop -passphrase secret \
//	         -clouds http://localhost:8081,http://localhost:8082,http://localhost:8083 \
//	         [-kr 2] [-ks 2] [-once] [-interval 30s]
//
// Without -once it runs as a daemon, scanning the folder and syncing
// every -interval.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unidrive/internal/cloud"
	"unidrive/internal/cloudhttp"
	"unidrive/internal/core"
	"unidrive/internal/health"
	"unidrive/internal/localfs"
	"unidrive/internal/obs"
	"unidrive/internal/vclock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "unidrive:", err)
		os.Exit(1)
	}
}

func run() error {
	folderPath := flag.String("folder", "./unidrive-sync", "local sync folder")
	device := flag.String("device", hostnameDefault(), "unique device name")
	passphrase := flag.String("passphrase", "", "metadata encryption passphrase (required)")
	cloudList := flag.String("clouds", "", "comma-separated base URLs of cloud endpoints (required)")
	k := flag.Int("k", 3, "data blocks per segment")
	kr := flag.Int("kr", 0, "min reachable clouds that must recover data (default N-2, >=1)")
	ks := flag.Int("ks", 2, "min breached clouds that may reconstruct data")
	once := flag.Bool("once", false, "sync once and exit")
	interval := flag.Duration("interval", 30*time.Second, "sync interval in daemon mode")
	flag.Parse()

	if *passphrase == "" {
		return fmt.Errorf("-passphrase is required")
	}
	urls := strings.Split(*cloudList, ",")
	if *cloudList == "" || len(urls) == 0 {
		return fmt.Errorf("-clouds is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var clouds []cloud.Interface
	for _, u := range urls {
		c, err := cloudhttp.Dial(ctx, strings.TrimSpace(u), http.DefaultClient)
		if err != nil {
			return fmt.Errorf("dialing %s: %w", u, err)
		}
		fmt.Printf("connected to %s (%s)\n", c.Name(), u)
		clouds = append(clouds, c)
	}

	folder, err := localfs.NewDir(*folderPath)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	tracker := health.NewDefaultTracker(vclock.Real{}, time.Now().UnixNano(), reg)
	client, err := core.New(clouds, folder, core.Config{
		Device:       *device,
		Passphrase:   *passphrase,
		K:            *k,
		Kr:           *kr,
		Ks:           *ks,
		SyncInterval: *interval,
		Obs:          reg,
		Health:       tracker,
	})
	if err != nil {
		return err
	}
	if restored, reason, err := client.LoadState(); err == nil && restored {
		fmt.Println("restored previous sync state")
	} else if err == nil && reason != core.ColdStartFresh {
		fmt.Printf("cold start (%s): rescanning the whole folder\n", reason)
	}
	if rec, err := client.Recover(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "unidrive: crash recovery:", err)
	} else if rec.IntentsReplayed > 0 {
		fmt.Printf("crash recovery: %d intents replayed, %d blocks resumed, %d orphans reclaimed, %d paths preserved\n",
			rec.IntentsReplayed, rec.BlocksResumed, rec.OrphansReclaimed, rec.PathsSuppressed)
	}
	fmt.Printf("unidrive: device %q, folder %s, %d clouds, params %+v\n",
		*device, folder.Root(), len(clouds), client.Params())

	syncAndReport := func() error {
		rep, err := client.SyncOnce(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("sync v%d: %d local changes committed, %d cloud changes applied",
			rep.Version, rep.LocalChanges, rep.CloudChanges)
		if rep.Upload.SegmentsUploaded > 0 {
			fmt.Printf(", %d segments (%d bytes) uploaded, available in %v",
				rep.Upload.SegmentsUploaded, rep.Upload.BytesUploaded, rep.AvailableDuration.Round(time.Millisecond))
		}
		for _, c := range rep.Conflicts {
			fmt.Printf("\nconflict retained as %q", c)
		}
		fmt.Println()
		return nil
	}

	if err := syncAndReport(); err != nil {
		return err
	}
	if *once {
		return nil
	}
	fmt.Printf("watching %s every %v (ctrl-c to stop)\n", folder.Root(), *interval)
	for {
		select {
		case <-ctx.Done():
			fmt.Println("unidrive: stopped")
			return nil
		case <-time.After(*interval):
		}
		if err := syncAndReport(); err != nil {
			fmt.Fprintln(os.Stderr, "unidrive: sync:", err)
			for _, c := range clouds {
				if b := tracker.Breaker(c.Name()); b.State() != health.Closed {
					fmt.Fprintf(os.Stderr, "unidrive: cloud %s breaker %v\n", c.Name(), b.State())
				}
			}
		}
	}
}

func hostnameDefault() string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return "device"
}
