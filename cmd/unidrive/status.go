package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"unidrive/internal/capacity"
	"unidrive/internal/cloud"
	"unidrive/internal/cloudhttp"
	"unidrive/internal/core"
	"unidrive/internal/localfs"
	"unidrive/internal/obs"
	"unidrive/internal/vclock"
)

// runStatus implements `unidrive status`: a read-only capacity and
// placement view of the committed metadata. It reports how the pool's
// blocks are spread across the clouds, which segments are committed
// thin (under-replicated because quota ran out when they were
// written), and this session's capacity tracker states. Thin segments
// are the durable footprint of quota exhaustion — they persist in the
// metadata until a repair scrub re-expands them, so status shows
// capacity pressure even from a cold start.
func runStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	folderPath := fs.String("folder", "./unidrive-sync", "local sync folder")
	device := fs.String("device", hostnameDefault(), "unique device name")
	passphrase := fs.String("passphrase", "", "metadata encryption passphrase (required)")
	cloudList := fs.String("clouds", "", "comma-separated base URLs of cloud endpoints (required)")
	verbose := fs.Bool("v", false, "list every thin segment, not just the count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *passphrase == "" {
		return fmt.Errorf("-passphrase is required")
	}
	urls := strings.Split(*cloudList, ",")
	if *cloudList == "" || len(urls) == 0 {
		return fmt.Errorf("-clouds is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var clouds []cloud.Interface
	for _, u := range urls {
		c, err := cloudhttp.Dial(ctx, strings.TrimSpace(u), http.DefaultClient)
		if err != nil {
			return fmt.Errorf("dialing %s: %w", u, err)
		}
		clouds = append(clouds, c)
	}
	folder, err := localfs.NewDir(*folderPath)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	tracker := capacity.NewDefaultTracker(vclock.Real{}, reg)
	client, err := core.New(clouds, folder, core.Config{
		Device:     *device,
		Passphrase: *passphrase,
		Capacity:   tracker,
		Obs:        reg,
	})
	if err != nil {
		return err
	}
	img, err := client.FetchImage(ctx)
	if err != nil {
		return err
	}

	perCloud := make(map[string]int)
	var bytesTotal int64
	segments, thin := 0, []string{}
	for id := range img.AllSegments() {
		seg, _ := img.Segment(id)
		segments++
		bytesTotal += int64(seg.Length)
		for _, b := range seg.Blocks {
			perCloud[b.CloudID]++
		}
		if seg.Thin {
			thin = append(thin, id)
		}
	}
	sort.Strings(thin)

	fmt.Printf("status: metadata v%d, %d segments, %d bytes of content\n",
		img.Version, segments, bytesTotal)
	fmt.Printf("%-12s %-10s %-8s %s\n", "CLOUD", "BLOCKS", "STATE", "QUOTA REJECTIONS")
	for _, c := range clouds {
		name := c.Name()
		fmt.Printf("%-12s %-10d %-8s %d\n",
			name, perCloud[name], tracker.State(name), tracker.Rejections(name))
	}
	if len(thin) == 0 {
		fmt.Println("capacity: no thin segments — every segment holds its full placement")
		return nil
	}
	fmt.Printf("capacity: %d THIN segments (committed under-replicated while clouds were out of quota)\n", len(thin))
	if *verbose {
		for _, id := range thin {
			seg, _ := img.Segment(id)
			fmt.Printf("  %s: %d/%d blocks (K=%d)\n",
				id, len(seg.Blocks), client.Params().NormalBlocks(), seg.K)
		}
	}
	fmt.Println("capacity: free space on the clouds, then run `unidrive scrub -repair` to re-expand")
	return nil
}
