// Command unicloud serves one simulated consumer cloud storage
// service over the RESTful Web API that UniDrive clients speak.
//
// It exists so the full UniDrive stack can be exercised over real
// HTTP: start five unicloud processes on different ports, then point
// cmd/unidrive (or the examples/resthttp program) at them.
//
// Usage:
//
//	unicloud -name dropbox -addr :8081 [-quota 2147483648] [-flaky 0.02]
//
// The store is in-memory and volatile: restarting the process clears
// it.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"unidrive/internal/cloud"
	"unidrive/internal/cloudhttp"
	"unidrive/internal/cloudsim"
	"unidrive/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "unicloud:", err)
		os.Exit(1)
	}
}

func run() error {
	name := flag.String("name", "unicloud", "provider name reported to clients")
	addr := flag.String("addr", ":8080", "listen address")
	quota := flag.Int64("quota", 0, "storage quota in bytes (0 = unlimited)")
	flaky := flag.Float64("flaky", 0, "probability that any API call fails transiently")
	seed := flag.Int64("seed", time.Now().UnixNano(), "seed for failure injection")
	flag.Parse()

	var backend cloud.Interface = cloudsim.NewDirect(cloudsim.NewStore(*name, *quota))
	if *flaky > 0 {
		backend = cloudsim.NewFlaky(backend, *flaky, *seed)
	}
	// Instrument the backend so every API call this server executes
	// shows up at /debug/unidrive (and /debug/vars via expvar).
	reg := obs.NewRegistry()
	backend = obs.Instrument(backend, reg, nil)
	handler := cloudhttp.NewHandler(backend)
	handler.EnableDebug(reg)
	obs.PublishExpvar("unidrive", reg)
	log.Printf("unicloud %q listening on %s (quota=%d, flaky=%.3f)", *name, *addr, *quota, *flaky)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
