// Command unibench regenerates the paper's tables and figures at full
// size on the simulation substrate and prints them in paper-style
// text form. EXPERIMENTS.md is written from its output.
//
// Usage:
//
//	unibench [-run all|fig1|fig2|fig3|fig4|tab1|fig8|fig9|fig10|fig11|fig12|tab3|fig13|fig14|trial]
//	         [-seed 1] [-quick]
//
// -quick shrinks workloads (fewer trials/files/users) for a fast
// pass; the default sizes match the paper's where feasible.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"unidrive/internal/experiments"
	"unidrive/internal/trial"
)

func main() {
	runSel := flag.String("run", "all", "experiment to run (comma separated), or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "smaller workloads for a fast pass")
	flag.Parse()

	selected := map[string]bool{}
	for _, s := range strings.Split(*runSel, ",") {
		selected[strings.TrimSpace(strings.ToLower(s))] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }

	show := func(tables ...*experiments.Table) {
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
	timed := func(name string, f func()) {
		start := time.Now()
		f()
		fmt.Printf("-- %s finished in %v --\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	// The measurement study (single raw transfers, no client compute)
	// tolerates a much higher clock compression than the end-to-end
	// experiments, whose hashing/coding compute would be magnified.
	mOpts := experiments.MeasurementOpts{Seed: *seed, Scale: 3000, Trials: 8}
	uOpts := experiments.MicroOpts{Seed: *seed, Trials: 5}
	bOpts := experiments.BatchOpts{Seed: *seed, Files: 100, FileKB: 1024}
	dOpts := experiments.DeltaOpts{Files: 1024, FileKB: 100}
	rOpts := experiments.ReliabilityOpts{Seed: *seed, Trials: 12}
	tOpts := trial.Opts{Seed: *seed, Users: 272, FilesPerUser: 10}
	if *quick {
		mOpts.Trials = 3
		uOpts.Trials = 2
		uOpts.SizeMB = 16
		bOpts.Files, bOpts.Sources = 20, 3
		dOpts.Files = 256
		rOpts.Trials = 6
		tOpts.Users, tOpts.FilesPerUser = 32, 6
	}

	if want("fig1") {
		timed("fig1", func() { show(experiments.Fig1SpatialVariation(mOpts)...) })
	}
	if want("fig2") {
		timed("fig2", func() { show(experiments.Fig2FileSizeThroughput(mOpts)) })
	}
	if want("fig3") {
		timed("fig3", func() { show(experiments.Fig3TemporalVariation(mOpts)) })
	}
	if want("fig4") {
		timed("fig4", func() { show(experiments.Fig4FailureBySize(mOpts)) })
	}
	if want("tab1") {
		timed("tab1", func() { show(experiments.Table1FailureCorrelation(mOpts)) })
	}
	if want("fig8") {
		timed("fig8", func() { show(experiments.Fig8Micro(uOpts)...) })
	}
	if want("fig9") {
		timed("fig9", func() { show(experiments.Fig9FileSizes(uOpts)) })
	}
	if want("fig10") {
		timed("fig10", func() { show(experiments.Fig10HourlyVariation(uOpts)) })
	}
	if want("fig11") || want("tab2") {
		timed("fig11+tab2", func() { show(experiments.Fig11BatchSync(bOpts)...) })
	}
	if want("fig12") {
		timed("fig12", func() { show(experiments.Fig12CumulativeSync(bOpts)) })
	}
	if want("tab3") {
		timed("tab3", func() { show(experiments.Table3Overhead(bOpts)) })
	}
	if want("fig13") {
		timed("fig13", func() { show(experiments.Fig13DeltaSync(dOpts)) })
	}
	if want("fig14") {
		timed("fig14", func() { show(experiments.Fig14Reliability(rOpts)) })
	}
	if want("ablation") {
		aOpts := experiments.AblationOpts{Seed: *seed, Trials: 7}
		if *quick {
			aOpts.Trials = 5
		}
		timed("ablation", func() {
			show(experiments.AblationOverProvisioning(aOpts),
				experiments.AblationDownloadScheduling(aOpts),
				experiments.AblationChunkerTheta(aOpts))
		})
	}
	if want("trial") || want("fig15") || want("fig16") {
		timed("trial", func() {
			res, err := trial.Run(tOpts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "unibench: trial:", err)
				return
			}
			show(trial.Fig15Throughput(res), trial.Fig16Daily(res), trial.DeploymentStats(res))
		})
	}
}
